(* A bounded lock-free Treiber stack over Platform atomics.

   This is the non-blocking substrate under the superblock reservoir and
   the empty-superblock shelf: push and pop complete with CAS only, no
   lock, so a thread preempted (or crashed, on real hardware) mid-way
   never blocks the others.

   Structure: a pool of [cap] slots. Each slot holds one payload (host
   state, owned exclusively by whichever thread currently owns the slot)
   and one atomic link word on its own cache line. Two Treiber stacks
   thread through the shared link array: [head] (the live stack) and
   [free_head] (unused slots); push moves a slot from the free stack to
   the live one, pop the reverse, so the population is bounded by [cap]
   with no separate count to maintain atomically.

   ABA: each head word packs [tag * (cap + 1) + (idx + 1)] (idx = -1 is
   the empty stack) and every successful CAS increments the tag, so a
   CAS whose top slot was popped and re-pushed in between fails instead
   of installing a stale link — the classic Treiber pop hazard. The
   [aba_tag:false] knob freezes the tag at zero, planting exactly that
   bug for the schedule explorer to find.

   The payload write ([slots.(i)]) is host state: it happens while the
   slot is private (after winning it from one stack, before the CAS
   publishing it on the other), and the publishing CAS is the
   linearization point, so no torn payload is ever observable. Link
   loads/stores are platform atomics — schedule-visible steps on
   distinct cache lines — which is what lets lib/check explore the
   protocol exhaustively and see real conflicts. *)

type 'a t = {
  cap : int;
  aba_tag : bool;
  head : Platform.atomic_int;
  free_head : Platform.atomic_int;
  next : Platform.atomic_int array; (* slot link: index of the slot below, -1 = bottom *)
  slots : 'a option array; (* payloads; entry owned by the slot's owner *)
  on_retry : unit -> unit;
  (* Host counters: no simulated cost, exact at quiescence. *)
  len : int Atomic.t;
  pushes : int Atomic.t;
  pops : int Atomic.t;
  retries : int Atomic.t;
  in_flight : int Atomic.t; (* operations started and not yet finished *)
}

let pack t ~tag ~idx = (tag * (t.cap + 1)) + idx + 1

let unpack t packed = (packed / (t.cap + 1), (packed mod (t.cap + 1)) - 1)

let next_tag t tag = if t.aba_tag then tag + 1 else 0

let create pf ~name ~cap ?(aba_tag = true) ?(on_retry = fun () -> ()) () =
  if cap < 0 then invalid_arg "Lockfree.create: cap must be non-negative";
  let new_atomic suffix init = pf.Platform.new_atomic (name ^ "." ^ suffix) init in
  let t =
    {
      cap;
      aba_tag;
      head = new_atomic "head" 0;
      (* Free stack initially holds every slot: 0 on top, linked upward. *)
      free_head = new_atomic "free" (if cap = 0 then 0 else 1 (* pack ~tag:0 ~idx:0 *));
      next =
        Array.init cap (fun i ->
            new_atomic (Printf.sprintf "next%d" i) (if i = cap - 1 then -1 else i + 1));
      slots = Array.make cap None;
      on_retry;
      len = Atomic.make 0;
      pushes = Atomic.make 0;
      pops = Atomic.make 0;
      retries = Atomic.make 0;
      in_flight = Atomic.make 0;
    }
  in
  t

let cap t = t.cap

let retry t =
  Atomic.incr t.retries;
  t.on_retry ()

(* Unlink the top slot of the stack headed by [head]. The window between
   the link load and the CAS is where ABA strikes: the tag makes the CAS
   fail whenever the head moved since [packed] was read, even if the same
   slot index is back on top with a different link. *)
let rec pop_slot t head =
  let packed = head.Platform.load () in
  let tag, idx = unpack t packed in
  if idx < 0 then None
  else begin
    let below = t.next.(idx).Platform.load () in
    if head.Platform.cas ~expected:packed ~desired:(pack t ~tag:(next_tag t tag) ~idx:below) then
      Some idx
    else begin
      retry t;
      pop_slot t head
    end
  end

(* Link the privately-owned slot [idx] on top of the stack headed by
   [head]. Storing the link before the CAS is safe — the slot is
   invisible until the CAS publishes it — and plain Treiber push never
   dereferences stale state, so it needs no window re-validation beyond
   the CAS itself. *)
let rec push_slot t head idx =
  let packed = head.Platform.load () in
  let tag, top = unpack t packed in
  t.next.(idx).Platform.store top;
  if head.Platform.cas ~expected:packed ~desired:(pack t ~tag:(next_tag t tag) ~idx) then ()
  else begin
    retry t;
    push_slot t head idx
  end

let push t v =
  if t.cap = 0 then false
  else begin
    Atomic.incr t.in_flight;
    let accepted =
      match pop_slot t t.free_head with
      | None -> false (* every slot is on the live stack: full *)
      | Some idx ->
        t.slots.(idx) <- Some v;
        push_slot t t.head idx;
        Atomic.incr t.len;
        Atomic.incr t.pushes;
        true
    in
    Atomic.decr t.in_flight;
    accepted
  end

let pop t =
  if t.cap = 0 then None
  else begin
    Atomic.incr t.in_flight;
    let taken =
      match pop_slot t t.head with
      | None -> None
      | Some idx ->
        let v =
          match t.slots.(idx) with
          | Some v -> v
          | None -> failwith "Lockfree.pop: live slot without a payload (corrupt stack)"
        in
        t.slots.(idx) <- None;
        push_slot t t.free_head idx;
        Atomic.decr t.len;
        Atomic.incr t.pops;
        Some v
    in
    Atomic.decr t.in_flight;
    taken
  end

let length t = Atomic.get t.len

let pushes t = Atomic.get t.pushes

let pops t = Atomic.get t.pops

let retries t = Atomic.get t.retries

(* Quiescent-only walk, top first. Asserts quiescence (no push/pop in
   flight) and validates the walked structure — a duplicated slot (the
   ABA failure mode) or a payload-less live slot raises instead of being
   silently iterated past. Uses [peek]: charge-free, callable from
   outside any simulated thread. *)
let iter t f =
  if Atomic.get t.in_flight <> 0 then failwith "Lockfree.iter: stack not quiescent";
  let seen = Array.make (max 1 t.cap) false in
  let rec walk idx n =
    if idx >= 0 then begin
      if n >= t.cap then failwith "Lockfree.iter: stack longer than its capacity (cycle?)";
      if seen.(idx) then failwith "Lockfree.iter: slot appears twice (lost ABA tag?)";
      seen.(idx) <- true;
      (match t.slots.(idx) with
       | Some v -> f v
       | None -> failwith "Lockfree.iter: live slot without a payload");
      walk (t.next.(idx).Platform.peek ()) (n + 1)
    end
  in
  if t.cap > 0 then walk (snd (unpack t (t.head.Platform.peek ()))) 0
