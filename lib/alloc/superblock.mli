(** Superblocks: fixed-size (S-byte) chunks carved into equal blocks of one
    size class.

    The first [header_bytes] of a superblock model its header; allocators
    touch that range through the platform on every operation so metadata
    coherence traffic is measured. Blocks are handed out bump-first, then
    from a LIFO free list (same order as the paper's implementation, which
    improves locality). An allocation bitmap detects double frees and
    foreign pointers.

    A fully empty superblock may be {!reinit}ialised to a different size
    class — this is how the global heap recycles superblocks across
    classes. *)

type t

val header_bytes : int
(** Reserved at the base of every superblock (64: one cache line). *)

val create : base:int -> sb_size:int -> sclass:int -> block_size:int -> t
(** [base] must be [sb_size]-aligned; [block_size] in
    [\[8, sb_size - header_bytes\]]. *)

val base : t -> int

val sb_size : t -> int

val block_size : t -> int

val sclass : t -> int

val n_blocks : t -> int
(** Capacity in blocks. *)

val used : t -> int
(** Blocks currently allocated. *)

val fullness : t -> float
(** [used / n_blocks] in [\[0, 1\]]. *)

val is_empty : t -> bool

val is_full : t -> bool

val owner : t -> int
(** Id of the heap currently owning this superblock. *)

val set_owner : t -> int -> unit

val alloc_block : t -> int
(** Address of a fresh block. Raises [Failure] when full. *)

val free_block : t -> int -> unit
(** Returns the block at the given address. Raises [Invalid_argument] on
    an address outside this superblock or not at a block boundary, and
    [Failure] on double free. *)

val contains : t -> int -> bool
(** Whether an address lies within this superblock's block area. *)

val is_block_live : t -> int -> bool
(** Whether the block at this address is currently allocated. *)

(** {2 Front-end custody state}

    A freed block absorbed by a thread's front-end cache (or parked on a
    remote-free queue) stays bitmap-live; the custody bit is the shared,
    O(1) record that it is no longer the program's — the state the
    double-free check consults, which a per-thread cache-membership scan
    cannot provide when the block is cached by {e another} thread. The
    bit is owned by whichever thread currently holds the block (same
    single-byte-store discipline as the [live] bitmap) and must be
    cleared before the block re-enters the program (cache hit) or its
    heap core (drain), preserving cached ⊆ live. *)

val mark_cached : t -> int -> unit

val clear_cached : t -> int -> unit

val is_block_cached : t -> int -> bool

(** Classification of an arbitrary address within a superblock, for the
    heap sanitizer: [Header] is the metadata line (a workload touching it
    clobbers a canary), [Block] carries the containing block's start
    address, index and liveness (so overflow past [b_start + block_size]
    and access to a dead block are distinguishable), [Tail_waste] is the
    slack past the last whole block. *)
type region =
  | Header
  | Block of { b_start : int; b_index : int; b_live : bool }
  | Tail_waste

val locate : t -> int -> region
(** Raises [Invalid_argument] if the address is outside
    [\[base, base + sb_size)]. *)

val reinit : t -> sclass:int -> block_size:int -> unit
(** Re-dedicates an empty superblock to another size class. Raises
    [Failure] if any block is live. *)

val reformat : t -> sclass:int -> block_size:int -> unit
(** Full re-format for reservoir reuse: {!reinit} plus severing owner,
    fullness group and free-list state — the structural equivalent of
    receiving freshly committed pages, so a superblock parked by one lock
    domain can be adopted by any other for any size class. Raises
    [Failure] if any block is live. *)

(** {2 Fullness-group bookkeeping (used by {!Heap_core})} *)

val gslot : t -> int
(** Slot id in the lock-free global index: assigned once on first
    publication there, stable across reinit/reformat, -1 before. *)

val set_gslot : t -> int -> unit

val group_index : t -> int
(** Current fullness-group slot, or -1 when unlinked. *)

val set_group : t -> int -> t Dlist.node option -> unit

val group_node : t -> t Dlist.node option

val check : t -> unit
(** Internal consistency: counts, free list and bitmap agree. Raises
    [Failure] otherwise. *)
