(** Unbounded intrusive deferred free list (MPSC): producers push
    remotely-freed blocks with one CAS on the list head (wait-free when
    uncontended, never locking the owner); the owning heap detaches the
    whole list with a single exchange and walks it privately. The
    push-only/take-all discipline makes the structure ABA-immune without
    generation tags — see the implementation header for the argument.

    The head word and per-block link loads/stores run on the simulated
    machine (costed, schedule-visible); link values live in host state
    behind a host mutex, touched only while the block is private. *)

type t

val create : Platform.t -> name:string -> ?lost_node:bool -> ?on_retry:(unit -> unit) -> unit -> t
(** [lost_node] plants the ["deferred-lost-node"] mutant: a failed push
    CAS is treated as success, silently dropping the block — only
    observable under producer contention. [on_retry] runs after every
    failed CAS (explorer instrumentation). *)

val push : t -> Superblock.t -> int -> unit
(** [push t sb addr] publishes block [addr] of [sb] onto the list. The
    block must be private to the caller (freed, custody-marked) and its
    address nonzero. *)

val push_many : t -> (Superblock.t * int) list -> unit
(** Publish a whole batch with a single CAS: the blocks are linked into
    a private chain (one link store per block, on the block's own line)
    and the head is swung once, so an eviction batch costs one head-line
    transfer regardless of size. Same preconditions per block as
    {!push}; [push_many t [(sb, a)]] is exactly [push t sb a]. *)

val reclaim : t -> (Superblock.t * int) list
(** Detach the entire list with one exchange and return its blocks,
    most-recently-pushed first. Empty list when there is nothing. *)

val drain_quiescent : t -> (Superblock.t * int) list
(** Same as {!reclaim} but charge-free and schedule-invisible, for
    post-run teardown only (uses [peek]/[poke]). *)

val length : t -> int
(** Blocks currently on the list (host accounting, quiescent-exact). *)

val pushes : t -> int

val reclaims : t -> int
(** Number of non-empty {!reclaim}/{!drain_quiescent} exchanges. *)

val reclaimed : t -> int
(** Total blocks returned across all reclaims. *)

val retries : t -> int
(** Failed CAS attempts (push and reclaim combined). *)

val iter : t -> (Superblock.t -> int -> unit) -> unit
(** Quiescent structural walk without consuming the list; fails on
    cycles, payload-less nodes, or a length drifting from the
    accounting. Call only when no thread is mid-operation. *)
