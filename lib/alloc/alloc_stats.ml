type snapshot = {
  mallocs : int;
  frees : int;
  bytes_requested : int;
  live_bytes : int;
  peak_live_bytes : int;
  held_bytes : int;
  peak_held_bytes : int;
  os_maps : int;
  os_unmaps : int;
  resident_bytes : int;
  peak_resident_bytes : int;
  reservoir_bytes : int;
  decommits : int;
  recommits : int;
  reservoir_parks : int;
  reservoir_drops : int;
  sb_to_global : int;
  sb_from_global : int;
  remote_frees : int;
  cache_hits : int;
  cache_fills : int;
  cache_flushes : int;
  remote_enqueues : int;
  remote_drains : int;
  remote_forwards : int;
  shelf_pushes : int;
  shelf_pops : int;
  large_maps : int;
  large_cache_hits : int;
  deferred_enqueues : int;
  deferred_reclaims : int;
  orphan_adoptions : int;
  cas_retries : int;
  cas_retries_by : (string * int) list;
  global_pushes : int;
  global_pops : int;
}

(* One shard per lock domain (a heap, a size class, the large allocator, a
   thread's front-end cache): plain mutable counters, every write made
   under that domain's lock (or by the domain's single owning thread), so
   the malloc/free hot path touches no cross-heap state. *)
type shard = {
  mutable mallocs : int;
  mutable frees : int;
  mutable bytes_requested : int;
  mutable live_bytes : int;
  mutable peak_live_bytes : int; (* this shard's own high-water mark *)
  mutable sb_to_global : int;
  mutable sb_from_global : int;
  mutable remote_frees : int;
  mutable cache_hits : int;
  mutable cache_fills : int;
  mutable cache_flushes : int;
  mutable remote_enqueues : int;
  mutable remote_drains : int;
  mutable remote_forwards : int;
  mutable shelf_pushes : int;
  mutable shelf_pops : int;
  mutable large_maps : int;
  mutable large_cache_hits : int;
  mutable deferred_enqueues : int;
  mutable deferred_reclaims : int;
  mutable orphan_adoptions : int;
  mutable peers : shard array; (* every shard of the owning [t], for peak merging *)
  merged_peak : int Atomic.t; (* shared with the owning [t] *)
}

(* The OS-map path (superblock-granularity, adjacent to a page_map call)
   runs on atomics instead: exact held bytes and an exact A_peak without
   any per-shard charging ambiguity when a superblock is mapped by one
   heap and unmapped by another. *)
type t = {
  shards : shard array Atomic.t;
  grow_mu : Mutex.t; (* serialises [add_shard]; a host mutex, never simulated *)
  held : int Atomic.t;
  peak_held : int Atomic.t;
  os_maps : int Atomic.t;
  os_unmaps : int Atomic.t;
  resident : int Atomic.t; (* mapped-and-committed bytes: the simulated RSS *)
  peak_resident : int Atomic.t;
  reservoir : int Atomic.t; (* bytes parked in the superblock reservoir *)
  decommits : int Atomic.t;
  recommits : int Atomic.t;
  parks : int Atomic.t;
  drops : int Atomic.t;
  cas_retries : int Atomic.t; (* failed CASes in lock-free structures; fired with no lock held *)
  retry_by : (string * int Atomic.t) list Atomic.t;
      (* per-structure breakdown of [cas_retries], in registration order;
         appended under [grow_mu], read lock-free *)
  global_pushes : int Atomic.t; (* superblocks published to the lock-free global index *)
  global_pops : int Atomic.t; (* superblocks acquired from it *)
  peak_live : int Atomic.t; (* merged high-water, refreshed on map/unmap/snapshot *)
}

let new_shard merged_peak =
  {
    mallocs = 0;
    frees = 0;
    bytes_requested = 0;
    live_bytes = 0;
    peak_live_bytes = 0;
    sb_to_global = 0;
    sb_from_global = 0;
    remote_frees = 0;
    cache_hits = 0;
    cache_fills = 0;
    cache_flushes = 0;
    remote_enqueues = 0;
    remote_drains = 0;
    remote_forwards = 0;
    shelf_pushes = 0;
    shelf_pops = 0;
    large_maps = 0;
    large_cache_hits = 0;
    deferred_enqueues = 0;
    deferred_reclaims = 0;
    orphan_adoptions = 0;
    peers = [||];
    merged_peak;
  }

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Alloc_stats.create: shards must be >= 1";
  let peak_live = Atomic.make 0 in
  let shard_arr = Array.init shards (fun _ -> new_shard peak_live) in
  Array.iter (fun sh -> sh.peers <- shard_arr) shard_arr;
  {
    shards = Atomic.make shard_arr;
    grow_mu = Mutex.create ();
    held = Atomic.make 0;
    peak_held = Atomic.make 0;
    os_maps = Atomic.make 0;
    os_unmaps = Atomic.make 0;
    resident = Atomic.make 0;
    peak_resident = Atomic.make 0;
    reservoir = Atomic.make 0;
    decommits = Atomic.make 0;
    recommits = Atomic.make 0;
    parks = Atomic.make 0;
    drops = Atomic.make 0;
    cas_retries = Atomic.make 0;
    retry_by = Atomic.make [];
    global_pushes = Atomic.make 0;
    global_pops = Atomic.make 0;
    peak_live;
  }

let nshards t = Array.length (Atomic.get t.shards)

let shard t i = (Atomic.get t.shards).(i)

(* Appends a fresh shard (a new lock domain created after construction,
   e.g. a thread's front-end cache). Peers of existing shards are
   refreshed so merged-peak samples see the newcomer; a sample racing the
   refresh reads the old array and stays a valid lower bound. *)
let add_shard t =
  Mutex.lock t.grow_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.grow_mu)
    (fun () ->
      let old = Atomic.get t.shards in
      let sh = new_shard t.peak_live in
      let arr = Array.append old [| sh |] in
      Array.iter (fun s -> s.peers <- arr) arr;
      Atomic.set t.shards arr;
      sh)

let rec store_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then store_max a v

(* Sample the merged peak while this shard is climbing past its own
   high-water mark. The sum reads peer shards unsynchronised (stale reads
   possible, torn ones not), giving a lower bound on the true global peak;
   once shards plateau the branch stops firing, so the steady-state hot
   path stays free of cross-shard traffic. *)
let bump_live sh bytes =
  let live = sh.live_bytes + bytes in
  sh.live_bytes <- live;
  if live > sh.peak_live_bytes then begin
    sh.peak_live_bytes <- live;
    store_max sh.merged_peak (Array.fold_left (fun acc p -> acc + p.live_bytes) 0 sh.peers)
  end

let on_malloc sh ~requested ~usable =
  sh.mallocs <- sh.mallocs + 1;
  sh.bytes_requested <- sh.bytes_requested + requested;
  bump_live sh usable

let on_free sh ~usable =
  sh.frees <- sh.frees + 1;
  sh.live_bytes <- sh.live_bytes - usable

let on_transfer_to_global sh = sh.sb_to_global <- sh.sb_to_global + 1

let on_transfer_from_global sh = sh.sb_from_global <- sh.sb_from_global + 1

let on_remote_free sh = sh.remote_frees <- sh.remote_frees + 1

(* Front-end events. A cached block stays charged to its superblock's heap
   ([u]) until the drain returns it, so live_bytes moves only when blocks
   cross the heap boundary: + at fill (blocks leave the heap core for a
   cache), - at drain (queued blocks re-enter a heap core). Cache-hit
   mallocs and cached frees leave live_bytes alone. *)
let on_cache_hit sh ~requested =
  sh.mallocs <- sh.mallocs + 1;
  sh.bytes_requested <- sh.bytes_requested + requested;
  sh.cache_hits <- sh.cache_hits + 1

let on_cached_free sh = sh.frees <- sh.frees + 1

let on_cache_fill sh ~blocks ~bytes =
  sh.cache_fills <- sh.cache_fills + blocks;
  bump_live sh bytes

let on_cache_flush sh ~blocks = sh.cache_flushes <- sh.cache_flushes + blocks

let on_remote_enqueue sh ~blocks = sh.remote_enqueues <- sh.remote_enqueues + blocks

let on_drain sh ~usable =
  sh.remote_drains <- sh.remote_drains + 1;
  sh.live_bytes <- sh.live_bytes - usable

let on_remote_forward sh ~blocks = sh.remote_forwards <- sh.remote_forwards + blocks

(* Shelf transfers move a whole empty superblock, so live bytes are
   untouched; [held] doesn't move either — a shelved superblock is still
   heap-held (it belongs to the global heap's envelope, just reachable
   without its lock). *)
let on_shelf_push sh = sh.shelf_pushes <- sh.shelf_pushes + 1

let on_shelf_pop sh = sh.shelf_pops <- sh.shelf_pops + 1

(* Large path. [on_large_map] marks a large allocation that paid a real
   OS map; [on_large_cache_hit] one served by the MPSC cache's
   take -> commit (both fire under the large lock, next to on_malloc). *)
let on_large_map sh = sh.large_maps <- sh.large_maps + 1

let on_large_cache_hit sh = sh.large_cache_hits <- sh.large_cache_hits + 1

(* Deferred free list: enqueues count blocks pushed (fired on the
   producer's own shard — the push itself takes no lock); reclaims count
   owner-side exchange operations, so enqueues/reclaims is the observed
   batching factor. *)
let on_deferred_enqueue sh = sh.deferred_enqueues <- sh.deferred_enqueues + 1

let on_deferred_reclaim sh = sh.deferred_reclaims <- sh.deferred_reclaims + 1

(* One orphaned superblock adopted (reassigned or trimmed to the global
   heap) on a thread's exit path; fired under the adopting heap's lock. *)
let on_orphan_adopt sh = sh.orphan_adoptions <- sh.orphan_adoptions + 1

let on_cas_retry t = Atomic.incr t.cas_retries

(* Labelled retry accounting: every lock-free structure obtains its hook
   once at construction (under [grow_mu], so concurrent allocators sharing
   a [t] stay safe) and fires it on each failed CAS. The hook bumps both
   the unified total and the structure's own counter, so
   [cas_retries = sum of cas_retries_by] holds at every quiescent point. *)
let retry_hook t ~label =
  Mutex.lock t.grow_mu;
  let counter =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.grow_mu)
      (fun () ->
        let cur = Atomic.get t.retry_by in
        match List.assoc_opt label cur with
        | Some c -> c
        | None ->
            let c = Atomic.make 0 in
            Atomic.set t.retry_by (cur @ [ (label, c) ]);
            c)
  in
  fun () ->
    Atomic.incr t.cas_retries;
    Atomic.incr counter

(* Global-index traffic: pushes/pops happen with no lock held (that is the
   point of the index), so they live on [t]-level atomics, not a shard. *)
let on_global_push t = Atomic.incr t.global_pushes

let on_global_pop t = Atomic.incr t.global_pops

(* Cross-shard reads are unsynchronised (possibly stale, never torn); the
   sum is exact on the deterministic simulator and at quiescent points on
   the host, which is where peaks are read. *)
let live_sum t = Array.fold_left (fun acc sh -> acc + sh.live_bytes) 0 (Atomic.get t.shards)

let refresh_peak_live t = store_max t.peak_live (live_sum t)

let bump_resident t bytes =
  let r = Atomic.fetch_and_add t.resident bytes + bytes in
  store_max t.peak_resident r

let on_map t ~bytes =
  let held = Atomic.fetch_and_add t.held bytes + bytes in
  store_max t.peak_held held;
  Atomic.incr t.os_maps;
  bump_resident t bytes;
  refresh_peak_live t

(* [resident]: whether the region still had committed pages when unmapped
   (false for a reservoir-parked superblock, already decommitted). *)
let on_unmap ?(resident = true) t ~bytes =
  ignore (Atomic.fetch_and_add t.held (-bytes));
  Atomic.incr t.os_unmaps;
  if resident then ignore (Atomic.fetch_and_add t.resident (-bytes));
  refresh_peak_live t

(* Reservoir lifecycle. A parked superblock is neither heap-held nor (once
   decommitted) resident: [held] tracks what heaps and the large path hold,
   which is what the blowup envelope and the residency invariant
   (resident <= held + R * S) are stated over. OS map/unmap counts are NOT
   touched — avoiding that traffic is the reservoir's point.

   [on_park] is PROVISIONAL: the parker calls it (held -> reservoir)
   before the superblock becomes visible in the reservoir, so a taker's
   [on_unpark] can never run first and drive the gauges negative or
   double-count the bytes in [held]. A successful offer is then confirmed
   with [on_park_commit]; a bounced one is reversed with [on_park_bounce],
   which accounts the ensuing unmap of the already-decommitted region
   (held was debited by [on_park]; resident by [on_decommit]). *)
let on_park t ~bytes =
  ignore (Atomic.fetch_and_add t.held (-bytes));
  ignore (Atomic.fetch_and_add t.reservoir bytes)

let on_park_commit t = Atomic.incr t.parks

let on_park_bounce t ~bytes =
  ignore (Atomic.fetch_and_add t.reservoir (-bytes));
  Atomic.incr t.drops;
  Atomic.incr t.os_unmaps;
  refresh_peak_live t

let on_unpark t ~bytes =
  let held = Atomic.fetch_and_add t.held bytes + bytes in
  store_max t.peak_held held;
  ignore (Atomic.fetch_and_add t.reservoir (-bytes))

let on_decommit t ~bytes =
  ignore (Atomic.fetch_and_add t.resident (-bytes));
  Atomic.incr t.decommits

let on_recommit t ~bytes =
  bump_resident t bytes;
  Atomic.incr t.recommits

let snapshot t =
  let mallocs = ref 0
  and frees = ref 0
  and bytes_requested = ref 0
  and live = ref 0
  and to_global = ref 0
  and from_global = ref 0
  and remote = ref 0
  and hits = ref 0
  and fills = ref 0
  and flushes = ref 0
  and enqueues = ref 0
  and drains = ref 0
  and forwards = ref 0
  and shelf_pushes = ref 0
  and shelf_pops = ref 0
  and large_maps = ref 0
  and large_cache_hits = ref 0
  and deferred_enqueues = ref 0
  and deferred_reclaims = ref 0
  and orphan_adoptions = ref 0 in
  Array.iter
    (fun sh ->
      mallocs := !mallocs + sh.mallocs;
      frees := !frees + sh.frees;
      bytes_requested := !bytes_requested + sh.bytes_requested;
      live := !live + sh.live_bytes;
      to_global := !to_global + sh.sb_to_global;
      from_global := !from_global + sh.sb_from_global;
      remote := !remote + sh.remote_frees;
      hits := !hits + sh.cache_hits;
      fills := !fills + sh.cache_fills;
      flushes := !flushes + sh.cache_flushes;
      enqueues := !enqueues + sh.remote_enqueues;
      drains := !drains + sh.remote_drains;
      forwards := !forwards + sh.remote_forwards;
      shelf_pushes := !shelf_pushes + sh.shelf_pushes;
      shelf_pops := !shelf_pops + sh.shelf_pops;
      large_maps := !large_maps + sh.large_maps;
      large_cache_hits := !large_cache_hits + sh.large_cache_hits;
      deferred_enqueues := !deferred_enqueues + sh.deferred_enqueues;
      deferred_reclaims := !deferred_reclaims + sh.deferred_reclaims;
      orphan_adoptions := !orphan_adoptions + sh.orphan_adoptions)
    (Atomic.get t.shards);
  (* Per-shard peaks are NOT summed here: a block malloc'd under one heap
     may be freed under another after its superblock migrates, so the sum
     of local peaks ratchets above any live total ever reached. The merged
     peak is the one sampled on shard-local rises, maps/unmaps and
     snapshots — exact when a single shard exists. *)
  store_max t.peak_live !live;
  {
    mallocs = !mallocs;
    frees = !frees;
    bytes_requested = !bytes_requested;
    live_bytes = !live;
    peak_live_bytes = Atomic.get t.peak_live;
    held_bytes = Atomic.get t.held;
    peak_held_bytes = Atomic.get t.peak_held;
    os_maps = Atomic.get t.os_maps;
    os_unmaps = Atomic.get t.os_unmaps;
    resident_bytes = Atomic.get t.resident;
    peak_resident_bytes = Atomic.get t.peak_resident;
    reservoir_bytes = Atomic.get t.reservoir;
    decommits = Atomic.get t.decommits;
    recommits = Atomic.get t.recommits;
    reservoir_parks = Atomic.get t.parks;
    reservoir_drops = Atomic.get t.drops;
    sb_to_global = !to_global;
    sb_from_global = !from_global;
    remote_frees = !remote;
    cache_hits = !hits;
    cache_fills = !fills;
    cache_flushes = !flushes;
    remote_enqueues = !enqueues;
    remote_drains = !drains;
    remote_forwards = !forwards;
    shelf_pushes = !shelf_pushes;
    shelf_pops = !shelf_pops;
    large_maps = !large_maps;
    large_cache_hits = !large_cache_hits;
    deferred_enqueues = !deferred_enqueues;
    deferred_reclaims = !deferred_reclaims;
    orphan_adoptions = !orphan_adoptions;
    cas_retries = Atomic.get t.cas_retries;
    cas_retries_by = List.map (fun (l, c) -> (l, Atomic.get c)) (Atomic.get t.retry_by);
    global_pushes = Atomic.get t.global_pushes;
    global_pops = Atomic.get t.global_pops;
  }

let fragmentation (s : snapshot) =
  if s.peak_live_bytes = 0 then nan else float_of_int s.peak_held_bytes /. float_of_int s.peak_live_bytes

let publish t ?(prefix = "alloc") metrics =
  let reg name f = Metrics.register metrics ~name:(prefix ^ "." ^ name) (fun () -> Metrics.Int (f (snapshot t))) in
  reg "mallocs" (fun s -> s.mallocs);
  reg "frees" (fun s -> s.frees);
  reg "bytes_requested" (fun s -> s.bytes_requested);
  reg "live_bytes" (fun s -> s.live_bytes);
  reg "peak_live_bytes" (fun s -> s.peak_live_bytes);
  reg "held_bytes" (fun s -> s.held_bytes);
  reg "peak_held_bytes" (fun s -> s.peak_held_bytes);
  reg "os_maps" (fun s -> s.os_maps);
  reg "os_unmaps" (fun s -> s.os_unmaps);
  reg "resident_bytes" (fun s -> s.resident_bytes);
  reg "peak_resident_bytes" (fun s -> s.peak_resident_bytes);
  reg "reservoir_bytes" (fun s -> s.reservoir_bytes);
  reg "decommits" (fun s -> s.decommits);
  reg "recommits" (fun s -> s.recommits);
  reg "reservoir_parks" (fun s -> s.reservoir_parks);
  reg "reservoir_drops" (fun s -> s.reservoir_drops);
  reg "sb_to_global" (fun s -> s.sb_to_global);
  reg "sb_from_global" (fun s -> s.sb_from_global);
  reg "remote_frees" (fun s -> s.remote_frees);
  reg "cache_hits" (fun s -> s.cache_hits);
  reg "cache_fills" (fun s -> s.cache_fills);
  reg "cache_flushes" (fun s -> s.cache_flushes);
  reg "remote_enqueues" (fun s -> s.remote_enqueues);
  reg "remote_drains" (fun s -> s.remote_drains);
  reg "remote_forwards" (fun s -> s.remote_forwards);
  reg "shelf_pushes" (fun s -> s.shelf_pushes);
  reg "shelf_pops" (fun s -> s.shelf_pops);
  reg "large_maps" (fun s -> s.large_maps);
  reg "large_cache_hits" (fun s -> s.large_cache_hits);
  reg "deferred_enqueues" (fun s -> s.deferred_enqueues);
  reg "deferred_reclaims" (fun s -> s.deferred_reclaims);
  reg "orphan_adoptions" (fun s -> s.orphan_adoptions);
  reg "cas_retries" (fun s -> s.cas_retries);
  reg "global_pushes" (fun s -> s.global_pushes);
  reg "global_pops" (fun s -> s.global_pops);
  (* One gauge per retry label registered so far (structures obtain their
     hooks at allocator construction, before publish). *)
  List.iter
    (fun (label, _) ->
      reg ("cas_retries." ^ label) (fun s ->
          match List.assoc_opt label s.cas_retries_by with
          | Some n -> n
          | None -> 0))
    (Atomic.get t.retry_by);
  if List.mem_assoc "global" (Atomic.get t.retry_by) then
    reg "global_cas_retries" (fun s ->
        match List.assoc_opt "global" s.cas_retries_by with
        | Some n -> n
        | None -> 0);
  Metrics.register metrics ~name:(prefix ^ ".fragmentation") (fun () ->
      Metrics.Float (fragmentation (snapshot t)))

let pp_snapshot fmt (s : snapshot) =
  Format.fprintf fmt
    "mallocs=%d frees=%d live=%dB peak_live=%dB held=%dB peak_held=%dB frag=%.2f maps=%d unmaps=%d to_glob=%d \
     from_glob=%d remote_frees=%d"
    s.mallocs s.frees s.live_bytes s.peak_live_bytes s.held_bytes s.peak_held_bytes (fragmentation s) s.os_maps
    s.os_unmaps s.sb_to_global s.sb_from_global s.remote_frees;
  if s.decommits + s.recommits + s.reservoir_parks > 0 then
    Format.fprintf fmt " resident=%dB peak_resident=%dB reservoir=%dB decommits=%d recommits=%d parks=%d drops=%d"
      s.resident_bytes s.peak_resident_bytes s.reservoir_bytes s.decommits s.recommits s.reservoir_parks
      s.reservoir_drops;
  if s.cache_hits + s.cache_fills + s.remote_enqueues > 0 then
    Format.fprintf fmt " cache_hits=%d fills=%d flushes=%d enq=%d drained=%d fwd=%d" s.cache_hits s.cache_fills
      s.cache_flushes s.remote_enqueues s.remote_drains s.remote_forwards;
  if s.shelf_pushes + s.shelf_pops + s.cas_retries > 0 then begin
    Format.fprintf fmt " shelf_pushes=%d shelf_pops=%d cas_retries=%d" s.shelf_pushes s.shelf_pops s.cas_retries;
    List.iter
      (fun (label, c) -> if c > 0 then Format.fprintf fmt "[%s=%d]" label c)
      s.cas_retries_by
  end;
  if s.large_maps + s.large_cache_hits > 0 then
    Format.fprintf fmt " large_maps=%d large_cache_hits=%d" s.large_maps s.large_cache_hits;
  if s.deferred_enqueues + s.deferred_reclaims > 0 then
    Format.fprintf fmt " deferred_enq=%d deferred_reclaims=%d" s.deferred_enqueues s.deferred_reclaims;
  if s.orphan_adoptions > 0 then Format.fprintf fmt " orphan_adoptions=%d" s.orphan_adoptions;
  if s.global_pushes + s.global_pops > 0 then
    Format.fprintf fmt " global_pushes=%d global_pops=%d" s.global_pushes s.global_pops
