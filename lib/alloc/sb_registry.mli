(** O(1) pointer-to-superblock resolution, safe under real parallelism.

    Superblocks are S-aligned in the address space, so the superblock
    containing an address is found by indexing [addr / S] — the same trick
    the paper's implementation uses to make [free] constant-time. One
    registry is shared by all heaps of an allocator.

    The registry is lock-striped: slots spread over a power-of-two number
    of stripes, each guarded by its own platform lock. Only the writers
    ({!register}, {!unregister} — rare, superblock-granularity events)
    take the stripe lock; every stripe publishes its slot map through an
    [Atomic], so {!lookup} on the [free] hot path is wait-free and
    data-race-free without serialising concurrent processors. *)

type t

val create : ?stripes:int -> Platform.t -> sb_size:int -> t
(** [stripes] (default 64) must be a positive power of two, as must
    [sb_size]. The platform provides the per-stripe locks. *)

val sb_size : t -> int

val nstripes : t -> int

val register : t -> Superblock.t -> unit
(** Takes the stripe lock; call from allocator code paths (on the
    simulated platform, from inside a simulated thread). *)

val unregister : t -> Superblock.t -> unit
(** Called when a superblock is returned to the OS. Takes the stripe
    lock. *)

val lookup : t -> addr:int -> Superblock.t option
(** The live superblock whose span contains [addr], if any. Wait-free:
    reads the stripe's atomically-published map, never blocks. *)

val count : t -> int
(** Lock-free; exact when writers are quiescent. *)

val iter : t -> (Superblock.t -> unit) -> unit
(** Iterates over registered superblocks in unspecified order, against an
    atomically-consistent per-stripe view. Lock-free. *)
