type t = {
  name : string;
  owner : int;
  large_threshold : int;
  malloc : int -> int;
  free : int -> unit;
  usable_size : int -> int;
  stats : unit -> Alloc_stats.snapshot;
  check : unit -> unit;
  malloc_batch : int -> int -> int array;
  free_batch : int array -> unit;
  flush : unit -> unit;
  thread_exit : unit -> unit;
  realloc : addr:int -> size:int -> int;
  calloc : count:int -> size:int -> int;
  aligned_alloc : align:int -> size:int -> int;
}

type factory = {
  label : string;
  description : string;
  instantiate : Platform.t -> t;
}

let owner_counter = Atomic.make 1

let next_owner () = Atomic.fetch_and_add owner_counter 1
