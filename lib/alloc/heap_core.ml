type t = {
  heap_id : int;
  classes : Size_class.t;
  ngroups : int;
  sbsz : int;
  groups : Superblock.t Dlist.t array array; (* [class].[bin]; bin ngroups = full *)
  empties : Superblock.t Dlist.t; (* completely empty, any class *)
  mutable in_use : int;
  mutable held : int;
  mutable usable : int; (* sum over superblocks of n_blocks * block_size *)
  class_counts : int array; (* linked superblocks per size class *)
}

(* Group encoding stored in each superblock: bins 0..ngroups-1 are partial
   fullness ranges, bin ngroups is "full", bin ngroups+1 means "in the
   empties pool", -1 means unlinked. The pure bin math is exported so the
   lock-free global index (which has no Heap_core.t) bins identically —
   a superblock migrating between a per-thread heap and the global index
   must land in the same fullness group either side. *)
let empties_bin_index ~ngroups = ngroups + 1

let full_bin_index ~ngroups = ngroups

let bin_index ~ngroups ~used ~cap =
  if used = 0 then empties_bin_index ~ngroups
  else if used = cap then full_bin_index ~ngroups
  else used * ngroups / cap

let empties_bin t = empties_bin_index ~ngroups:t.ngroups

let create ~id ~classes ?(ngroups = 8) ~sb_size () =
  if ngroups < 1 then invalid_arg "Heap_core.create: ngroups must be >= 1";
  {
    heap_id = id;
    classes;
    ngroups;
    sbsz = sb_size;
    groups = Array.init (Size_class.count classes) (fun _ -> Array.init (ngroups + 1) (fun _ -> Dlist.create ()));
    empties = Dlist.create ();
    in_use = 0;
    held = 0;
    usable = 0;
    class_counts = Array.make (Size_class.count classes) 0;
  }

let id t = t.heap_id

let sb_size t = t.sbsz

let ngroups t = t.ngroups

let u t = t.in_use

let a t = t.held

let usable_a t = t.usable

let bin_of t sb =
  bin_index ~ngroups:t.ngroups ~used:(Superblock.used sb) ~cap:(Superblock.n_blocks sb)

let list_for t sb bin = if bin = empties_bin t then t.empties else t.groups.(Superblock.sclass sb).(bin)

let unlink t sb =
  match Superblock.group_node sb with
  | None -> invalid_arg "Heap_core: superblock not linked"
  | Some node ->
    Dlist.remove (list_for t sb (Superblock.group_index sb)) node;
    Superblock.set_group sb (-1) None

let link t sb =
  let bin = bin_of t sb in
  let node = Dlist.push_front (list_for t sb bin) sb in
  Superblock.set_group sb bin (Some node)

(* Move a superblock to its correct group after a fullness change. *)
let reposition t sb =
  let bin = bin_of t sb in
  if bin <> Superblock.group_index sb then begin
    unlink t sb;
    link t sb
  end

let contribution sb = Superblock.used sb * Superblock.block_size sb

let usable_contribution sb = Superblock.n_blocks sb * Superblock.block_size sb

let insert t sb =
  Superblock.set_owner sb t.heap_id;
  t.held <- t.held + Superblock.sb_size sb;
  t.in_use <- t.in_use + contribution sb;
  t.usable <- t.usable + usable_contribution sb;
  t.class_counts.(Superblock.sclass sb) <- t.class_counts.(Superblock.sclass sb) + 1;
  link t sb

let remove t sb =
  unlink t sb;
  t.held <- t.held - Superblock.sb_size sb;
  t.in_use <- t.in_use - contribution sb;
  t.usable <- t.usable - usable_contribution sb;
  t.class_counts.(Superblock.sclass sb) <- t.class_counts.(Superblock.sclass sb) - 1

let superblock_count t = t.held / t.sbsz

let empty_superblock_count t = Dlist.length t.empties

(* Fullest-first search among the partial bins of a class. *)
let find_partial t sclass =
  let rec scan bin =
    if bin < 0 then None
    else
      match Dlist.peek_front t.groups.(sclass).(bin) with
      | Some sb -> Some sb
      | None -> scan (bin - 1)
  in
  scan (t.ngroups - 1)

let find_allocatable t ~sclass =
  match find_partial t sclass with
  | Some _ -> true
  | None -> not (Dlist.is_empty t.empties)

let malloc t ~sclass ~block_size =
  let sb =
    match find_partial t sclass with
    | Some sb -> Some sb
    | None ->
      (match Dlist.peek_front t.empties with
       | None -> None
       | Some sb ->
         if Superblock.sclass sb <> sclass || Superblock.block_size sb <> block_size then begin
           t.usable <- t.usable - usable_contribution sb;
           t.class_counts.(Superblock.sclass sb) <- t.class_counts.(Superblock.sclass sb) - 1;
           Superblock.reinit sb ~sclass ~block_size;
           t.usable <- t.usable + usable_contribution sb;
           t.class_counts.(sclass) <- t.class_counts.(sclass) + 1
         end;
         Some sb)
  in
  match sb with
  | None -> None
  | Some sb ->
    let addr = Superblock.alloc_block sb in
    t.in_use <- t.in_use + Superblock.block_size sb;
    reposition t sb;
    Some (addr, sb)

let free t sb addr =
  if Superblock.owner sb <> t.heap_id then invalid_arg "Heap_core.free: superblock owned by another heap";
  Superblock.free_block sb addr;
  t.in_use <- t.in_use - Superblock.block_size sb;
  reposition t sb

(* Batched forms: one group-list traversal amortised over up to [n]
   blocks. [malloc_batch] stops early when the heap runs dry (the caller
   refills and retries); both preserve exactly the per-operation
   accounting of their singular counterparts. *)
let malloc_batch t ~sclass ~block_size ~n =
  let out = ref [] and got = ref 0 and short = ref false in
  while (not !short) && !got < n do
    match malloc t ~sclass ~block_size with
    | Some pair ->
      out := pair :: !out;
      incr got
    | None -> short := true
  done;
  List.rev !out

let free_batch t pairs = List.iter (fun (sb, addr) -> free t sb addr) pairs

let take_for_class t ~sclass =
  let sb =
    match find_partial t sclass with
    | Some sb -> Some sb
    | None -> Dlist.peek_front t.empties
  in
  match sb with
  | None -> None
  | Some sb ->
    remove t sb;
    Some sb

let find_victim t ~max_fullness ~protect_last =
  match Dlist.peek_front t.empties with
  | Some sb -> Some sb
  | None ->
    let eligible sb =
      Superblock.fullness sb <= max_fullness
      && ((not protect_last) || t.class_counts.(Superblock.sclass sb) > 1)
    in
    let rec scan bin =
      if bin >= t.ngroups then None
      else if float_of_int bin /. float_of_int t.ngroups > max_fullness then None
      else
        let found = ref None in
        let each_class sclass =
          if !found = None then
            match Dlist.find eligible t.groups.(sclass).(bin) with
            | Some sb -> found := Some sb
            | None -> ()
        in
        for sclass = 0 to Size_class.count t.classes - 1 do
          each_class sclass
        done;
        (match !found with
         | Some sb -> Some sb
         | None -> scan (bin + 1))
    in
    scan 0

let has_victim t ~max_fullness ~protect_last = find_victim t ~max_fullness ~protect_last <> None

let pick_victim ?(protect_last = false) t ~max_fullness =
  match find_victim t ~max_fullness ~protect_last with
  | None -> None
  | Some sb ->
    remove t sb;
    Some sb

let iter t f =
  Array.iter (fun bins -> Array.iter (fun l -> Dlist.iter f l) bins) t.groups;
  Dlist.iter f t.empties

let class_profile t =
  let n = Size_class.count t.classes in
  let used = Array.make n 0 and blocks = Array.make n 0 in
  iter t (fun sb ->
      let c = Superblock.sclass sb in
      used.(c) <- used.(c) + Superblock.used sb;
      blocks.(c) <- blocks.(c) + Superblock.n_blocks sb);
  Array.init n (fun c ->
      (t.class_counts.(c), if blocks.(c) = 0 then 0. else float_of_int used.(c) /. float_of_int blocks.(c)))

let check t =
  let held = ref 0 and in_use = ref 0 and usable = ref 0 in
  let visit expected_bin sb =
    Superblock.check sb;
    if Superblock.owner sb <> t.heap_id then failwith "Heap_core.check: wrong owner";
    if Superblock.group_index sb <> expected_bin then failwith "Heap_core.check: group index mismatch";
    if bin_of t sb <> expected_bin then failwith "Heap_core.check: superblock in wrong group";
    if Superblock.sb_size sb <> t.sbsz then failwith "Heap_core.check: wrong superblock size";
    held := !held + Superblock.sb_size sb;
    in_use := !in_use + contribution sb;
    usable := !usable + usable_contribution sb
  in
  Array.iteri
    (fun sclass bins ->
      Array.iteri
        (fun bin l ->
          Dlist.iter
            (fun sb ->
              if Superblock.sclass sb <> sclass then failwith "Heap_core.check: superblock in wrong class list";
              visit bin sb)
            l)
        bins)
    t.groups;
  Dlist.iter
    (fun sb ->
      if not (Superblock.is_empty sb) then failwith "Heap_core.check: non-empty superblock in empties pool";
      visit (empties_bin t) sb)
    t.empties;
  if !held <> t.held then failwith "Heap_core.check: held bytes mismatch";
  if !in_use <> t.in_use then failwith "Heap_core.check: in-use bytes mismatch";
  if !usable <> t.usable then failwith "Heap_core.check: usable bytes mismatch";
  let counts = Array.make (Size_class.count t.classes) 0 in
  iter t (fun sb -> counts.(Superblock.sclass sb) <- counts.(Superblock.sclass sb) + 1);
  if counts <> t.class_counts then failwith "Heap_core.check: class counts mismatch"
