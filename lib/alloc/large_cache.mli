(** Lock-free MPSC cache of large-object regions in front of
    {!Large_alloc}: freed regions park decommitted-but-mapped in
    bounded per-page-count {!Lockfree} buckets; an allocation of the
    same page count takes one back with pop → commit instead of a map.
    Decommit happens before the publishing push and commit after the
    privatising pop, so no schedule can observe a parked resident
    region (same discipline as the superblock reservoir). *)

type t

val create :
  Platform.t ->
  name:string ->
  cap:int ->
  ?nbuckets:int ->
  ?aba_tag:bool ->
  ?on_retry:(unit -> unit) ->
  unit ->
  t
(** [cap] bounds each bucket (0 disables the cache: every park reports
    [`Uncacheable]). [nbuckets] (default 16) buckets cache regions of
    1..nbuckets pages; larger regions are uncacheable. [aba_tag:false]
    plants the ["large-cache-no-aba"] mutant (frozen Treiber tags on
    every bucket); [on_retry] fires on each failed CAS. *)

val cacheable : t -> mapped:int -> bool

val park : t -> addr:int -> mapped:int -> [ `Parked | `Bounced | `Uncacheable ]
(** Park a privately-owned region of exactly [mapped] bytes.
    [`Parked]: the cache owns it (decommitted). [`Bounced]: bucket
    full — the region is still the caller's, now decommitted, and must
    be unmapped. [`Uncacheable]: wrong size or cache disabled; the
    caller proceeds as without a cache (no decommit happened). *)

val take : t -> mapped:int -> int option
(** Pop a parked region of exactly [mapped] bytes and commit its pages.
    [None] on an empty bucket or uncacheable size. *)

val length : t -> int
(** Regions parked across all buckets (exact at quiescence). *)

val parked_bytes : t -> int

val capacity_bytes : t -> int
(** Worst-case mapped bytes the cache can hold: the blowup envelope's
    slop term for a cache-enabled configuration. *)

val takes : t -> int

val parks : t -> int

val retries : t -> int

val iter : t -> (addr:int -> mapped:int -> unit) -> unit
(** Quiescent-only walk of every parked region. *)

val check : t -> unit
(** Quiescent structural + residency check: buckets within capacity,
    stacks uncorrupted, every parked region mapped and decommitted. *)
