(** {!Large_alloc} behind its own lock, with the size threshold test —
    the large-object path shared by every allocator implementation.

    All operations that touch the object table ({!malloc}, {!try_free},
    {!usable_size}) acquire the internal lock, so the module is safe to
    call concurrently on the host platform. *)

type t

val create :
  ?shard:int ->
  ?ring:Event_ring.t ->
  ?cache:Large_cache.t ->
  Platform.t ->
  owner:int ->
  stats:Alloc_stats.t ->
  threshold:int ->
  t
(** [shard] is the index of the stats shard charged for large
    malloc/free events (the shard's lock domain is this module's internal
    lock); defaults to the last shard of [stats]. [ring], when given,
    records [Large_map]/[Large_unmap] events under the same lock.

    [cache], when given, fronts the OS with a lock-free {!Large_cache}:
    a free of a cacheable region parks it (decommit, then one CAS)
    instead of unmapping; a later malloc of the same page count takes it
    back with pop → commit instead of a map. The take/park protocol runs
    outside the table lock; only the table mutation and its counters
    stay under it. *)

val is_large : t -> int -> bool
(** Whether a request of this size takes the large path. *)

val malloc : t -> int -> int

val try_free : t -> addr:int -> bool
(** [true] if [addr] was a live large object (now freed). *)

val usable_size : t -> addr:int -> int option

val live_bytes : t -> int

val cache : t -> Large_cache.t option
