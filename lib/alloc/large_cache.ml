(* Lock-free MPSC cache of large (> S/2) regions, sitting in front of
   {!Large_alloc}: instead of a map/unmap round trip per large object,
   a freed region is parked — decommitted but still mapped — in a
   bucket keyed by its page count, and a later allocation of the same
   page count takes it back with pop → commit. Buckets are bounded
   {!Lockfree} stacks, so park and take are pure CAS protocols shared
   by any number of producers; overflow (bucket full) and oversized
   regions fall back to the seed unmap/map path.

   Residency discipline mirrors the superblock reservoir: the region is
   decommitted *before* the push publishes it (while still private), so
   no interleaving can observe a parked-but-resident region; a take
   commits *after* the pop made the region private again. Parked
   regions stay mapped, hence charged to held — the blowup envelope's
   slop grows by [capacity_bytes] — while residency drops, keeping
   resident <= held intact. *)

type t = {
  pf : Platform.t;
  page_size : int;
  nbuckets : int; (* bucket i holds regions of exactly (i+1) pages *)
  bucket_cap : int;
  buckets : int Lockfree.t array; (* payload: region base address *)
}

let create (pf : Platform.t) ~name ~cap ?(nbuckets = 16) ?(aba_tag = true) ?on_retry () =
  if cap < 0 then invalid_arg "Large_cache.create: cap must be non-negative";
  if nbuckets < 1 then invalid_arg "Large_cache.create: nbuckets must be >= 1";
  {
    pf;
    page_size = pf.Platform.page_size;
    nbuckets;
    bucket_cap = cap;
    buckets =
      Array.init nbuckets (fun i ->
          Lockfree.create pf ~name:(Printf.sprintf "%s.b%d" name (i + 1)) ~cap ~aba_tag ?on_retry ());
  }

let bucket_of t ~mapped =
  if mapped <= 0 || mapped mod t.page_size <> 0 then None
  else
    let pages = mapped / t.page_size in
    if pages <= t.nbuckets then Some (pages - 1) else None

let cacheable t ~mapped = t.bucket_cap > 0 && bucket_of t ~mapped <> None

(* Park a privately-owned mapped region: decommit first, publish second.
   [`Bounced] means the bucket was full — the region is still the
   caller's, already decommitted, and must be unmapped. *)
let park t ~addr ~mapped =
  match if t.bucket_cap = 0 then None else bucket_of t ~mapped with
  | None -> `Uncacheable
  | Some i ->
    t.pf.Platform.page_decommit ~addr;
    if Lockfree.push t.buckets.(i) addr then `Parked else `Bounced

(* Take a region of exactly [mapped] bytes: the pop privatises it, the
   commit brings its pages back. *)
let take t ~mapped =
  match if t.bucket_cap = 0 then None else bucket_of t ~mapped with
  | None -> None
  | Some i ->
    (match Lockfree.pop t.buckets.(i) with
     | None -> None
     | Some addr ->
       t.pf.Platform.page_commit ~addr;
       Some addr)

let length t = Array.fold_left (fun acc b -> acc + Lockfree.length b) 0 t.buckets

let parked_bytes t =
  let acc = ref 0 in
  Array.iteri (fun i b -> acc := !acc + (Lockfree.length b * (i + 1) * t.page_size)) t.buckets;
  !acc

let capacity_bytes t = t.bucket_cap * t.nbuckets * (t.nbuckets + 1) / 2 * t.page_size

let takes t = Array.fold_left (fun acc b -> acc + Lockfree.pops b) 0 t.buckets

let parks t = Array.fold_left (fun acc b -> acc + Lockfree.pushes b) 0 t.buckets

let retries t = Array.fold_left (fun acc b -> acc + Lockfree.retries b) 0 t.buckets

let iter t f =
  Array.iteri (fun i b -> Lockfree.iter b (fun addr -> f ~addr ~mapped:((i + 1) * t.page_size))) t.buckets

(* Quiescent structural + residency check: every parked region must be
   mapped and decommitted (a resident parked region is the
   park-ordering bug), buckets within capacity, stacks uncorrupted
   (Lockfree.iter fails on the ABA-loss signatures). *)
let check t =
  Array.iteri
    (fun i b ->
      if Lockfree.length b > t.bucket_cap then
        failwith (Printf.sprintf "Large_cache: bucket %d over capacity (%d > %d)" (i + 1) (Lockfree.length b) t.bucket_cap);
      Lockfree.iter b (fun addr ->
          match t.pf.Platform.page_residency ~addr with
          | Vmem.Decommitted -> ()
          | Vmem.Resident -> failwith (Printf.sprintf "Large_cache: parked region %#x still resident" addr)
          | Vmem.Unmapped -> failwith (Printf.sprintf "Large_cache: parked region %#x not mapped" addr)))
    t.buckets
