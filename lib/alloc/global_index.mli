(** The lock-free global heap: a CAS-published fullness index over the
    superblocks heap 0 holds, replacing its Dlist fullness groups so that
    superblock transfer — heap to global, global to heap — and frees
    into global superblocks never acquire the heap-0 lock.

    Each member superblock owns one slot (id cached in
    [Superblock.gslot], assigned once, stable for its lifetime) whose
    atomic word — Absent / Idle(bin) / Busy(bin) — is the ground truth
    of membership. Findability comes from ABA-tagged Treiber stacks of
    entry nodes, one per (size class, fullness bin) plus one
    class-agnostic empties stack, maintained lazily: entries can be
    stale, pops discard or relocate them against the word, and the
    invariant is only that every quiescent Idle(b) member is reachable
    in stack b. Claims are a single CAS Idle -> Absent; frees run a
    Busy handshake. Every retry loop is bounded by other threads'
    progress, keeping the protocol explorable by lib/check.

    Concurrency contract: {!publish}, {!acquire}, {!take_empty} and
    {!free_block} are lock-free and callable from any thread;
    {!publish} additionally requires the superblock to be private to
    the caller (unlinked from any heap core, owner already 0).
    {!iter_members} and {!check} are quiescent-only peek walks. The
    [?record] callbacks fire event-ring records ({!Event_ring.Global_push}
    / [Global_pop] / [Global_revalidate]) and must respect the ring's
    own lock-domain discipline — pass one only while holding the
    calling heap's lock, or omit it. *)

type t

val create :
  Platform.t ->
  name:string ->
  nclasses:int ->
  ngroups:int ->
  ?aba_tag:bool ->
  ?skip_revalidate:bool ->
  ?on_retry:(unit -> unit) ->
  unit ->
  t
(** [aba_tag:false] freezes the stack tags (the "global-no-aba" mutant);
    [skip_revalidate:true] turns the claim CAS into a blind store (the
    "global-skip-revalidate" mutant); [on_retry] fires on every failed
    CAS (wire it to [Alloc_stats.retry_hook ~label:"global"]). *)

val publish : ?record:(Event_ring.kind -> arg:int -> unit) -> t -> Superblock.t -> unit
(** Make a privately-held superblock a member: word to Idle(bin), one
    entry pushed to its (class, bin) stack. Works for any fullness,
    including full and empty. *)

val acquire : ?record:(Event_ring.kind -> arg:int -> unit) -> t -> sclass:int -> Superblock.t option
(** Claim the fullest allocatable member of [sclass] — partial bins
    scanned fullest-first, then the empties (which the caller may need
    to {!Superblock.reinit} to [sclass]). [None] when nothing is
    claimable, or when a Busy member paused a stack's scan (a transient
    miss: scanning past it could livelock against a descheduled
    reclaimer). The returned superblock is private to the caller. *)

val take_empty : ?record:(Event_ring.kind -> arg:int -> unit) -> t -> Superblock.t option
(** Claim one empty member (any class) — the release-to-OS path. *)

type free_result =
  | Freed of { now_empty : bool }  (** block returned; bin updated and republished *)
  | Requeue  (** another reclaimer holds the superblock Busy: retry later *)
  | Not_member of { owner : int }
      (** the superblock was claimed away; route the block to [owner]
          ([0] = still in transit to some heap: requeue) *)

val free_block : t -> Superblock.t -> addr:int -> free_result
(** Free one block into a member superblock via the Busy handshake. The
    caller must have cleared the block's custody bit; stats and events
    around the free are the caller's. *)

(** {2 Gauges — host atomics, exact at quiescence} *)

val members : t -> int

val empties : t -> int

val u_bytes : t -> int
(** Usable live bytes inside member superblocks. *)

val pushes : t -> int

val pops : t -> int

val revalidates : t -> int

val retries : t -> int

(** {2 Quiescent mutation — peek/poke, no simulated cost}

    Teardown-time counterparts of {!publish} and {!free_block} for
    [Hoard.flush_caches]: only call when every worker has joined. *)

val q_publish : t -> Superblock.t -> unit
(** {!publish} without schedule visibility or event recording. *)

val q_free : t -> Superblock.t -> addr:int -> unit
(** Free one block into a member with no Busy handshake (nothing is
    concurrent). Raises [Failure] if the superblock is not a quiescent
    Idle member. *)

(** {2 Quiescent introspection — peek-only, no simulated cost} *)

val iter_members : t -> (Superblock.t -> unit) -> unit
(** Every current member, in slot order. Raises [Failure] on a Busy
    word (a reclaimer died mid-protocol). *)

val check : t -> unit
(** Exhaustive structural validation: every node reachable from exactly
    one head (unreachable nodes are the lost-ABA strand), no Busy
    words, recorded bins match recomputed fullness, every member
    reachable in its own bin's stack, gauges equal recomputed sums,
    and [Superblock.check] on every member. Raises [Failure] with a
    diagnostic otherwise. *)
