(* Generic implementations of the extended allocation API, expressed over
   the raw malloc/free/usable_size closures (not the record, so a builder
   can assemble a record without tying the knot). *)

let generic_calloc (pf : Platform.t) ~malloc ~count ~size =
  if count <= 0 || size <= 0 then invalid_arg "Alloc_api.calloc: count and size must be positive";
  if count > max_int / size then invalid_arg "Alloc_api.calloc: size overflow";
  let total = count * size in
  let addr = malloc total in
  pf.Platform.write ~addr ~len:total;
  addr

let generic_realloc (pf : Platform.t) ~malloc ~free ~usable_size ~addr ~size =
  if size <= 0 then invalid_arg "Alloc_api.realloc: size must be positive";
  let old_usable = usable_size addr in
  if size <= old_usable then addr
  else begin
    let fresh = malloc size in
    let copied = min old_usable size in
    pf.Platform.read ~addr ~len:copied;
    pf.Platform.write ~addr:fresh ~len:copied;
    free addr;
    fresh
  end

let generic_aligned_alloc (pf : Platform.t) ~malloc ~large_threshold ~align ~size =
  if size <= 0 then invalid_arg "Alloc_api.aligned_alloc: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc_api.aligned_alloc: align must be a positive power of two";
  if align <= 8 then malloc size
  else if align > pf.Platform.page_size then
    invalid_arg "Alloc_api.aligned_alloc: alignment beyond the page size is not supported"
  else
    (* Force the page-aligned large-object path; pages satisfy any
       alignment up to their own size. *)
    malloc (max size (large_threshold + 1))

let make ~pf ~name ~owner ~large_threshold ~malloc ~free ~usable_size ~stats ~check ?malloc_batch
    ?free_batch ?flush ?thread_exit ?realloc () =
  let malloc_batch =
    match malloc_batch with
    | Some f -> f
    | None -> fun n size -> Array.init n (fun _ -> malloc size)
  in
  let free_batch =
    match free_batch with
    | Some f -> f
    | None -> fun addrs -> Array.iter free addrs
  in
  let flush =
    match flush with
    | Some f -> f
    | None -> fun () -> ()
  in
  (* Allocators without per-thread heap assignments have nothing to adopt
     on exit: flushing the front end is the whole obligation. *)
  let thread_exit =
    match thread_exit with
    | Some f -> f
    | None -> flush
  in
  let realloc =
    match realloc with
    | Some f -> f
    | None -> fun ~addr ~size -> generic_realloc pf ~malloc ~free ~usable_size ~addr ~size
  in
  {
    Alloc_intf.name;
    owner;
    large_threshold;
    malloc;
    free;
    usable_size;
    stats;
    check;
    malloc_batch;
    free_batch;
    flush;
    thread_exit;
    realloc;
    calloc = (fun ~count ~size -> generic_calloc pf ~malloc ~count ~size);
    aligned_alloc = (fun ~align ~size -> generic_aligned_alloc pf ~malloc ~large_threshold ~align ~size);
  }

(* The original free-function forms, kept as thin wrappers over the record
   members so existing call sites (and their error contracts) are
   untouched. The [Platform.t] argument is retained for signature
   stability; the record member already closes over its platform. *)

let calloc (_pf : Platform.t) (a : Alloc_intf.t) ~count ~size = a.Alloc_intf.calloc ~count ~size

let realloc (_pf : Platform.t) (a : Alloc_intf.t) ~addr ~size = a.Alloc_intf.realloc ~addr ~size

let aligned_alloc (_pf : Platform.t) (a : Alloc_intf.t) ~align ~size = a.Alloc_intf.aligned_alloc ~align ~size
