type entry = { usable : int; mapped : int }

type t = {
  pf : Platform.t;
  owner : int;
  stats : Alloc_stats.t;
  sh : Alloc_stats.shard;
  ring : Event_ring.t option; (* written under the caller's lock, like [sh] *)
  table : (int, entry) Hashtbl.t;
  mutable live_b : int;
}

let create ?ring pf ~owner ~stats ~shard =
  { pf; owner; stats; sh = shard; ring; table = Hashtbl.create 64; live_b = 0 }

let round_up x align = (x + align - 1) / align * align

let event t kind arg =
  match t.ring with
  | None -> ()
  | Some r ->
    Event_ring.record r ~at:(t.pf.Platform.now ()) ~kind ~who:(t.pf.Platform.self_proc ()) ~heap:(-1)
      ~sclass:(-1) ~arg

let malloc t size =
  if size <= 0 then invalid_arg "Large_alloc.malloc: size must be positive";
  let usable = round_up size 8 in
  let mapped = round_up size t.pf.Platform.page_size in
  let addr = t.pf.Platform.page_map ~bytes:mapped ~align:t.pf.Platform.page_size ~owner:t.owner in
  Hashtbl.replace t.table addr { usable; mapped };
  Alloc_stats.on_map t.stats ~bytes:mapped;
  Alloc_stats.on_malloc t.sh ~requested:size ~usable;
  Alloc_stats.on_large_map t.sh;
  event t Event_ring.Large_map mapped;
  t.live_b <- t.live_b + usable;
  addr

(* Adopt a region taken from the large cache: its pages are already
   mapped (held never changed while it was parked) and recommitted by
   the take, so the only work is the table insert and the malloc /
   cache-hit counters — no OS-map accounting. *)
let adopt t ~addr ~size ~mapped =
  let usable = round_up size 8 in
  Hashtbl.replace t.table addr { usable; mapped };
  Alloc_stats.on_malloc t.sh ~requested:size ~usable;
  Alloc_stats.on_large_cache_hit t.sh;
  event t Event_ring.Recommit mapped;
  event t Event_ring.Large_cache_hit mapped;
  t.live_b <- t.live_b + usable

let free t ~addr =
  match Hashtbl.find_opt t.table addr with
  | None -> false
  | Some { usable; mapped } ->
    Hashtbl.remove t.table addr;
    t.pf.Platform.page_unmap ~addr;
    Alloc_stats.on_unmap t.stats ~bytes:mapped;
    Alloc_stats.on_free t.sh ~usable;
    event t Event_ring.Large_unmap mapped;
    t.live_b <- t.live_b - usable;
    true

(* Remove [addr] from the table and count the free WITHOUT touching the
   pages: the caller decides whether the region parks in the cache or
   goes back to the OS. Returns the region's mapped size. *)
let release t ~addr =
  match Hashtbl.find_opt t.table addr with
  | None -> None
  | Some { usable; mapped } ->
    Hashtbl.remove t.table addr;
    Alloc_stats.on_free t.sh ~usable;
    t.live_b <- t.live_b - usable;
    Some mapped

let has_ring t = t.ring <> None

let note t kind ~arg = event t kind arg

let usable_size t ~addr =
  match Hashtbl.find_opt t.table addr with
  | None -> None
  | Some { usable; _ } -> Some usable

let live_count t = Hashtbl.length t.table

let live_bytes t = t.live_b
