(** Geometric size classes.

    Small requests are rounded up to one of a fixed set of block sizes:
    8-byte steps up to 64 bytes, then geometric with the paper's growth
    factor b = 1.2 (rounded to 8-byte multiples) up to [max_small]. Objects
    above [max_small] take the allocator's large-object path. Bounded
    internal fragmentation: a block wastes at most [growth - 1] of its
    size. *)

type t

val create : ?min_block:int -> ?growth:float -> max_small:int -> unit -> t
(** [min_block] defaults to 8, [growth] to 1.2. [max_small] is the largest
    size served from superblocks (the paper uses S/2). *)

val count : t -> int
(** Number of classes. *)

val max_small : t -> int

val size_of_class : t -> int -> int
(** Block size of a class index (0-based, ascending). *)

val class_of_size : t -> int -> int
(** Smallest class whose block size is >= the request. Requests of 0 are
    treated as 1. Raises [Invalid_argument] if the request exceeds
    [max_small]. O(1): a precomputed size-indexed lookup table, this
    being on every malloc's path. *)

val class_of_size_search : t -> int -> int
(** The binary-search reference {!class_of_size}'s lookup table is built
    from. Exposed so tests can assert the two agree on every size. *)

val sizes : t -> int array
(** All block sizes, ascending (a copy). *)
