(** Accounting shared by every allocator implementation, sharded so that
    concurrent heaps never contend on (or race over) a common counter.

    Tracks the two quantities the paper's fragmentation and blowup
    definitions are built from:
    - [live]: bytes currently allocated to the program (in usable-size
      terms), with its high-water mark ["U"];
    - [held]: bytes currently held from the OS, with its high-water mark
      ["A"].

    Fragmentation (paper Table 4) is [A_peak / U_peak].

    Concurrency contract: a {!t} is split into [shards], one per lock
    domain of the allocator (per heap, per size class, one for the large
    path). The per-operation counters ({!on_malloc}, {!on_free}, the
    transfer and remote-free events) must only be called while holding the
    lock of the shard's domain — they are plain mutable updates with no
    internal synchronisation. The OS-map path ({!on_map}, {!on_unmap}) and
    {!snapshot} are atomic/lock-free and may be called from any domain.

    Peak semantics: [held]/[peak_held] are maintained atomically on every
    map/unmap, so A_peak is exact. [peak_live] for a single-shard [t] is
    exact; for a sharded [t] it is the high-water mark of the summed live
    bytes, sampled whenever a shard climbs past its own local peak and at
    every map, unmap and snapshot. The sample sums peer shards without
    taking their locks, so it is a close lower bound on the true global
    peak rather than an exact figure — the price of keeping malloc/free
    free of cross-heap synchronisation. *)

type t

type shard
(** A slice of a {!t} owned by one lock domain. *)

type snapshot = {
  mallocs : int;
  frees : int;
  bytes_requested : int;  (** sum of requested sizes over all mallocs *)
  live_bytes : int;  (** usable bytes currently allocated to the program *)
  peak_live_bytes : int;
  held_bytes : int;  (** bytes currently held from the OS *)
  peak_held_bytes : int;
  os_maps : int;
  os_unmaps : int;
  resident_bytes : int;
      (** held-from-OS bytes whose pages are committed (the simulated
          RSS): mapped regions minus decommitted ones. The lifecycle
          invariant is [resident_bytes <= held_bytes + R * sb_size]. *)
  peak_resident_bytes : int;
  reservoir_bytes : int;  (** bytes parked in the superblock reservoir *)
  decommits : int;  (** regions decommitted (madvise-style page drops) *)
  recommits : int;  (** decommitted regions re-populated for reuse *)
  reservoir_parks : int;  (** superblocks accepted into the reservoir *)
  reservoir_drops : int;  (** park offers bounced (reservoir full -> unmap) *)
  sb_to_global : int;  (** superblock transfers heap -> global *)
  sb_from_global : int;  (** superblock transfers global -> heap *)
  remote_frees : int;  (** frees whose block belongs to another heap *)
  cache_hits : int;  (** mallocs served by a front-end cache, no lock taken *)
  cache_fills : int;  (** blocks moved heap -> front-end cache *)
  cache_flushes : int;  (** blocks flushed out of front-end caches *)
  remote_enqueues : int;  (** blocks pushed onto remote-free queues *)
  remote_drains : int;  (** blocks returned to a heap core by the front end *)
  remote_forwards : int;
      (** migrated blocks re-forwarded by a drain to the new owner's queue *)
  shelf_pushes : int;  (** empty superblocks pushed onto the lock-free shelf *)
  shelf_pops : int;  (** refills served by popping the shelf (no global lock) *)
  large_maps : int;  (** large allocations that paid an OS map *)
  large_cache_hits : int;  (** large allocations served by the MPSC cache (take -> commit) *)
  deferred_enqueues : int;  (** blocks CAS-pushed onto deferred free lists *)
  deferred_reclaims : int;
      (** owner-side deferred-list exchanges that returned blocks;
          [deferred_enqueues / deferred_reclaims] is the batching factor *)
  orphan_adoptions : int;
      (** superblocks adopted (reassigned or trimmed to the global heap)
          from exiting threads' heaps by {!Hoard.on_thread_exit} *)
  cas_retries : int;  (** failed CASes in lock-free structures (contention) *)
  cas_retries_by : (string * int) list;
      (** per-structure breakdown of [cas_retries] by hook label (e.g.
          ["reservoir"], ["shelf"], ["deferred"], ["large-cache"],
          ["global"]), in hook-registration order; the labels sum to
          [cas_retries] at quiescent points *)
  global_pushes : int;  (** superblocks published to the lock-free global index *)
  global_pops : int;  (** superblocks acquired from the lock-free global index *)
}

val create : ?shards:int -> unit -> t
(** [shards] defaults to 1 (the single-lock-domain case, exact peaks). *)

val nshards : t -> int

val shard : t -> int -> shard

val add_shard : t -> shard
(** Appends a shard for a lock domain created after construction (a
    thread's front-end cache). Thread-safe; existing shards keep working
    throughout. The new shard follows the same contract as the others:
    its events must be serialised by its own domain. *)

(** {2 Per-operation events — call under the shard's lock} *)

val on_malloc : shard -> requested:int -> usable:int -> unit

val on_free : shard -> usable:int -> unit

val on_transfer_to_global : shard -> unit

val on_transfer_from_global : shard -> unit

val on_remote_free : shard -> unit

(** {2 Front-end events — call under the shard's domain discipline}

    A block sitting in a front-end cache or a remote-free queue stays
    charged to the heap that owns its superblock, so [live_bytes] (and
    with it every allocator's [check]) reconciles exactly against the
    heap cores at any quiescent point: fills add the moved bytes
    ({!on_cache_fill}, under the source heap's lock), drains subtract
    them ({!on_drain}, under the destination heap's lock), and the
    cache-hit malloc / cached free in between touch only the operation
    counters. *)

val on_cache_hit : shard -> requested:int -> unit
(** A malloc served from the thread's cache: counts the malloc and the
    requested bytes; live bytes are unchanged (charged since the fill). *)

val on_cached_free : shard -> unit
(** A free absorbed by the thread's cache: counts the free; live bytes
    are unchanged (the block stays charged until drained). *)

val on_cache_fill : shard -> blocks:int -> bytes:int -> unit
(** Blocks moved from a heap core into a cache, under that heap's lock. *)

val on_cache_flush : shard -> blocks:int -> unit

val on_remote_enqueue : shard -> blocks:int -> unit

val on_drain : shard -> usable:int -> unit
(** One block returned to a heap core (queue drain or direct fallback),
    under that heap's lock: live bytes drop by [usable]; the free itself
    was already counted by {!on_cached_free}. *)

val on_remote_forward : shard -> blocks:int -> unit
(** Migrated blocks a drain re-forwarded to their new owner's queue
    instead of freeing inline, under the draining heap's lock. *)

val on_shelf_push : shard -> unit
(** An empty superblock moved heap -> shelf, under the source heap's
    lock. Live and held bytes are untouched: a shelved superblock stays
    heap-held (global heap's envelope, reachable without its lock). *)

val on_shelf_pop : shard -> unit
(** A refill served from the shelf, under the destination heap's lock. *)

val on_large_map : shard -> unit
(** A large allocation that mapped fresh pages, under the large lock. *)

val on_large_cache_hit : shard -> unit
(** A large allocation served by the cache's take -> commit, under the
    large lock (the take itself is lock-free; the table insert that
    follows is where this fires). *)

val on_deferred_enqueue : shard -> unit
(** A block pushed onto a deferred free list — fired on the producer's
    own (single-writer) shard, since the push takes no lock. *)

val on_deferred_reclaim : shard -> unit
(** A non-empty owner-side deferred-list exchange, under the owner's
    heap lock. *)

val on_orphan_adopt : shard -> unit
(** One orphaned superblock adopted on a thread's exit path, under the
    lock of the heap giving the superblock up. *)

val on_cas_retry : t -> unit
(** A failed CAS inside a lock-free structure, unlabelled (total only).
    Atomic — fired with no lock held, from any domain. Prefer
    {!retry_hook}, which also feeds the per-structure breakdown. *)

val retry_hook : t -> label:string -> unit -> unit
(** [retry_hook t ~label] returns the retry callback for one lock-free
    structure: each call counts into both the unified [cas_retries] total
    and the [label]'s own slot of [cas_retries_by] (created on first use).
    Obtain hooks at allocator construction — {!publish} registers one
    [<prefix>.cas_retries.<label>] gauge per label known at publish time.
    Atomic — callable with no lock held, from any domain. *)

val on_global_push : t -> unit
(** A superblock published to the lock-free global index (transfer
    heap -> global without the heap-0 lock). Atomic, no lock held. *)

val on_global_pop : t -> unit
(** A superblock acquired from the lock-free global index (transfer
    global -> heap without the heap-0 lock). Atomic, no lock held. *)

(** {2 OS-map events — atomic, callable from any domain} *)

val on_map : t -> bytes:int -> unit
(** A fresh OS map: bytes become held and resident. *)

val on_unmap : ?resident:bool -> t -> bytes:int -> unit
(** A region returned to the OS. [resident] (default true) says whether
    its pages were still committed — pass [false] when unmapping an
    already-decommitted region so resident accounting is not
    double-debited. *)

(** {2 Residency / reservoir events — atomic, callable from any domain}

    The parker records its whole side — [on_decommit] (bytes leave the
    resident set) and the provisional [on_park] (held -> reservoir) —
    BEFORE offering the superblock to the reservoir, so that a concurrent
    taker's [on_unpark]/[on_recommit] (reservoir -> held, bytes re-enter
    the resident set) can never be observed first: gauges stay
    non-negative and nothing is double-counted in [held] at any
    interleaving. The offer's outcome then resolves the provisional park:
    [on_park_commit] if the reservoir accepted it, [on_park_bounce] if it
    was full (which also accounts the ensuing unmap of the
    already-decommitted region). Only the bounce touches the OS
    map/unmap counts — avoiding that traffic is the reservoir's point. *)

val on_park : t -> bytes:int -> unit
(** Provisional held -> reservoir transfer; call before the superblock is
    published, then resolve with {!on_park_commit} or {!on_park_bounce}. *)

val on_park_commit : t -> unit
(** The reservoir accepted the offer: count the park. *)

val on_park_bounce : t -> bytes:int -> unit
(** The reservoir was full: reverse the provisional byte transfer, count
    the drop, and account the unmap of the (already-decommitted, so no
    resident debit) superblock. *)

val on_unpark : t -> bytes:int -> unit

val on_decommit : t -> bytes:int -> unit

val on_recommit : t -> bytes:int -> unit

(** {2 Reading} *)

val snapshot : t -> snapshot
(** Merges all shards. Lock-free; counts are exact whenever every shard's
    domain is quiescent (e.g. at barriers or after joining workers). *)

val fragmentation : snapshot -> float
(** [peak_held / peak_live]; [nan] before any allocation. *)

val publish : t -> ?prefix:string -> Metrics.t -> unit
(** Registers one gauge per snapshot field (plus [<prefix>.fragmentation])
    under names [<prefix>.<field>]; [prefix] defaults to ["alloc"]. Each
    gauge takes a fresh {!snapshot} when read, so exporting the registry
    at quiescence yields exact figures. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
