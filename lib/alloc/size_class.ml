type t = { table : int array; max_small : int; lut : int array (* size -> class, 0..max_small *) }

let round_up x align = (x + align - 1) / align * align

(* Smallest class with table.(c) >= size; the builder for the lookup
   table and the reference the equivalence test checks against. *)
let search table size =
  let lo = ref 0 and hi = ref (Array.length table - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if table.(mid) >= size then hi := mid else lo := mid + 1
  done;
  !lo

let create ?(min_block = 8) ?(growth = 1.2) ~max_small () =
  if min_block < 8 || min_block mod 8 <> 0 then invalid_arg "Size_class.create: min_block must be a multiple of 8";
  if growth <= 1.0 then invalid_arg "Size_class.create: growth must exceed 1.0";
  if max_small < min_block then invalid_arg "Size_class.create: max_small too small";
  let rec build acc size =
    if size >= max_small then List.rev (max_small :: acc)
    else
      let next =
        if size < 64 then size + min_block
        else max (size + 8) (round_up (int_of_float (ceil (float_of_int size *. growth))) 8)
      in
      build (size :: acc) (min next max_small)
  in
  let table = Array.of_list (build [] min_block) in
  { table; max_small; lut = Array.init (max_small + 1) (fun s -> search table (max s 1)) }

let count t = Array.length t.table

let max_small t = t.max_small

let size_of_class t c = t.table.(c)

let class_of_size t size =
  let size = max size 1 in
  if size > t.max_small then invalid_arg "Size_class.class_of_size: request exceeds max_small";
  Array.unsafe_get t.lut size

let class_of_size_search t size =
  let size = max size 1 in
  if size > t.max_small then invalid_arg "Size_class.class_of_size: request exceeds max_small";
  search t.table size

let sizes t = Array.copy t.table
