type t = { large : Large_alloc.t; lock : Platform.lock; threshold : int }

let create ?shard ?ring pf ~owner ~stats ~threshold =
  let shard_idx =
    match shard with
    | Some i -> i
    | None -> Alloc_stats.nshards stats - 1
  in
  {
    large = Large_alloc.create ?ring pf ~owner ~stats ~shard:(Alloc_stats.shard stats shard_idx);
    lock = pf.Platform.new_lock "large";
    threshold;
  }

let is_large t size = size > t.threshold

let malloc t size =
  t.lock.acquire ();
  let addr = Large_alloc.malloc t.large size in
  t.lock.release ();
  addr

let try_free t ~addr =
  t.lock.acquire ();
  let found = Large_alloc.free t.large ~addr in
  t.lock.release ();
  found

let usable_size t ~addr =
  (* The table is mutated under [t.lock]; an unlocked read could observe a
     Hashtbl mid-resize. *)
  t.lock.acquire ();
  let r = Large_alloc.usable_size t.large ~addr in
  t.lock.release ();
  r

let live_bytes t = Large_alloc.live_bytes t.large
