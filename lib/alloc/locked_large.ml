type t = {
  pf : Platform.t;
  large : Large_alloc.t;
  lock : Platform.lock;
  threshold : int;
  cache : Large_cache.t option;
  stats : Alloc_stats.t;
}

let create ?shard ?ring ?cache pf ~owner ~stats ~threshold =
  let shard_idx =
    match shard with
    | Some i -> i
    | None -> Alloc_stats.nshards stats - 1
  in
  {
    pf;
    large = Large_alloc.create ?ring pf ~owner ~stats ~shard:(Alloc_stats.shard stats shard_idx);
    lock = pf.Platform.new_lock "large";
    threshold;
    cache;
    stats;
  }

let is_large t size = size > t.threshold

(* Ring writes share the table lock's domain, but the cache protocol runs
   outside it — so a park's Decommit / Large_unmap trace entries are
   recorded in a tiny dedicated critical section, and only when a ring
   exists at all. *)
let with_ring_lock t f =
  if Large_alloc.has_ring t.large then begin
    t.lock.acquire ();
    f ();
    t.lock.release ()
  end

let round_up x align = (x + align - 1) / align * align

(* The cache hit path: pop + commit outside the lock (pure CAS protocol,
   shared by all threads), then the table insert under it. A miss — or a
   disabled/unsuitable cache — pays the OS map as before. *)
let malloc t size =
  let from_os () =
    t.lock.acquire ();
    let addr = Large_alloc.malloc t.large size in
    t.lock.release ();
    addr
  in
  match t.cache with
  | None -> from_os ()
  | Some c ->
    if size <= 0 then from_os ()
    else begin
      let mapped = round_up size t.pf.Platform.page_size in
      match Large_cache.take c ~mapped with
      | None -> from_os ()
      | Some addr ->
        Alloc_stats.on_recommit t.stats ~bytes:mapped;
        t.lock.acquire ();
        Large_alloc.adopt t.large ~addr ~size ~mapped;
        t.lock.release ();
        addr
    end

(* Free with a cache: the table removal (and the free counters) happen
   under the lock while the region is still accounted; the park itself —
   decommit, then one CAS — runs outside it. A bounce (bucket full) or an
   uncacheable size falls back to the seed unmap. Parked regions stay
   mapped, so held is untouched and only residency drops. *)
let try_free t ~addr =
  match t.cache with
  | None ->
    t.lock.acquire ();
    let found = Large_alloc.free t.large ~addr in
    t.lock.release ();
    found
  | Some c ->
    t.lock.acquire ();
    let released = Large_alloc.release t.large ~addr in
    t.lock.release ();
    (match released with
     | None -> false
     | Some mapped ->
       (match Large_cache.park c ~addr ~mapped with
        | `Parked ->
          Alloc_stats.on_decommit t.stats ~bytes:mapped;
          with_ring_lock t (fun () -> Large_alloc.note t.large Event_ring.Decommit ~arg:mapped)
        | `Bounced ->
          (* The push lost to a full bucket: the region is ours again,
             already decommitted — return it to the OS without debiting
             residency twice. *)
          t.pf.Platform.page_unmap ~addr;
          Alloc_stats.on_decommit t.stats ~bytes:mapped;
          Alloc_stats.on_unmap ~resident:false t.stats ~bytes:mapped;
          with_ring_lock t (fun () ->
              Large_alloc.note t.large Event_ring.Decommit ~arg:mapped;
              Large_alloc.note t.large Event_ring.Large_unmap ~arg:mapped)
        | `Uncacheable ->
          t.pf.Platform.page_unmap ~addr;
          Alloc_stats.on_unmap t.stats ~bytes:mapped;
          with_ring_lock t (fun () -> Large_alloc.note t.large Event_ring.Large_unmap ~arg:mapped));
       true)

let usable_size t ~addr =
  (* The table is mutated under [t.lock]; an unlocked read could observe a
     Hashtbl mid-resize. *)
  t.lock.acquire ();
  let r = Large_alloc.usable_size t.large ~addr in
  t.lock.release ();
  r

let live_bytes t = Large_alloc.live_bytes t.large

let cache t = t.cache
