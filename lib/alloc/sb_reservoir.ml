(* The size-class-agnostic parking lot for empty superblocks.

   When the global heap drains an empty superblock, the allocator parks
   it here — unregistered, decommitted, but still mapped — instead of
   unmapping it; a later refill of ANY size class takes it back with a
   commit + reformat instead of an OS map. The structure itself is
   policy-free: the caller performs the decommit, registry and stats
   traffic strictly BEFORE [park] (an accepted superblock is immediately
   visible to a concurrent [take]) and the commit/registration after
   [take]; this module only bounds the population (cap R, its own lock
   domain "hoard.reservoir", innermost — never held while acquiring
   another lock). *)

type t = {
  cap : int;
  lock : Platform.lock;
  mutable parked : Superblock.t list; (* newest first *)
  mutable len : int;
  mutable parks : int;
  mutable takes : int;
  mutable rejects : int;
}

let create pf ~cap =
  if cap < 0 then invalid_arg "Sb_reservoir.create: cap must be non-negative";
  {
    cap;
    lock = pf.Platform.new_lock "hoard.reservoir";
    parked = [];
    len = 0;
    parks = 0;
    takes = 0;
    rejects = 0;
  }

let cap t = t.cap

let park t sb =
  if not (Superblock.is_empty sb) then failwith "Sb_reservoir.park: superblock not empty";
  t.lock.Platform.acquire ();
  let accepted = t.len < t.cap in
  if accepted then begin
    t.parked <- sb :: t.parked;
    t.len <- t.len + 1;
    t.parks <- t.parks + 1
  end
  else t.rejects <- t.rejects + 1;
  t.lock.Platform.release ();
  accepted

let take t =
  t.lock.Platform.acquire ();
  let sb =
    match t.parked with
    | [] -> None
    | sb :: rest ->
      t.parked <- rest;
      t.len <- t.len - 1;
      t.takes <- t.takes + 1;
      Some sb
  in
  t.lock.Platform.release ();
  sb

let length t = t.len

let parks t = t.parks

let takes t = t.takes

let rejects t = t.rejects

(* Quiescent-only: walks the list without the (simulated) lock so checks
   can run from outside any simulated thread. *)
let iter t f = List.iter f t.parked
