(* The size-class-agnostic parking lot for empty superblocks.

   When the global heap drains an empty superblock, the allocator parks
   it here — unregistered, decommitted, but still mapped — instead of
   unmapping it; a later refill of ANY size class takes it back with a
   commit + reformat instead of an OS map. The structure itself is
   policy-free: the caller performs the decommit, registry and stats
   traffic strictly BEFORE [park] (an accepted superblock is immediately
   visible to a concurrent [take]) and the commit/registration after
   [take]; this module only bounds the population (cap R).

   Non-blocking: park and take are a push/pop on a lock-free Treiber
   stack (see Lockfree) — CAS only, no lock to serialize on or deadlock
   against, so the reservoir imposes no lock-ordering constraint at
   all. Park/take counters ride on the stack's own host counters;
   [rejects] (offers bounced on a full pool) is the one count the stack
   doesn't track. *)

type t = {
  stack : Superblock.t Lockfree.t;
  rejects : int Atomic.t; (* host counter: exact at quiescence *)
}

let create ?aba_tag ?on_retry pf ~cap =
  if cap < 0 then invalid_arg "Sb_reservoir.create: cap must be non-negative";
  { stack = Lockfree.create pf ~name:"hoard.reservoir" ~cap ?aba_tag ?on_retry (); rejects = Atomic.make 0 }

let cap t = Lockfree.cap t.stack

let park t sb =
  if not (Superblock.is_empty sb) then failwith "Sb_reservoir.park: superblock not empty";
  let accepted = Lockfree.push t.stack sb in
  if not accepted then Atomic.incr t.rejects;
  accepted

let take t = Lockfree.pop t.stack

let length t = Lockfree.length t.stack

let parks t = Lockfree.pushes t.stack

let takes t = Lockfree.pops t.stack

let rejects t = Atomic.get t.rejects

let cas_retries t = Lockfree.retries t.stack

let iter t f = Lockfree.iter t.stack f
