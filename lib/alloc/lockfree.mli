(** Bounded lock-free Treiber stack over {!Platform} atomics.

    The non-blocking substrate of the superblock reservoir and the
    empty-superblock shelf: [push]/[pop] complete with CAS only — no
    lock, so they are safe at any interleaving and explorable by
    [Check.Explorer] (link words are platform atomics on distinct cache
    lines, every operation a schedule-visible step).

    A pool of [cap] slots threads through two Treiber stacks (live and
    free), bounding the population without a shared counter. Head words
    carry an ABA tag incremented by every successful CAS, so a pop whose
    top slot was recycled mid-window fails its CAS instead of installing
    a stale link. *)

type 'a t

val create :
  Platform.t -> name:string -> cap:int -> ?aba_tag:bool -> ?on_retry:(unit -> unit) -> unit -> 'a t
(** [name] prefixes the atomics' names ("<name>.head", "<name>.free",
    "<name>.next<i>") as seen by the schedule explorer. [aba_tag]
    (default true) must only be disabled by tests: [false] freezes the
    ABA tag at zero, planting the classic Treiber pop bug for the
    explorer to catch. [on_retry] fires on every failed CAS (retry), for
    the caller's contention counters; it runs on the operating thread
    and must be cheap and lock-free itself. A [cap] of 0 is legal: the
    stack is permanently empty and full. *)

val cap : 'a t -> int

val push : 'a t -> 'a -> bool
(** [false]: the pool is exhausted (stack full). The payload write is
    host state on a privately-owned slot; the publishing CAS is the
    linearization point. *)

val pop : 'a t -> 'a option
(** Most recently pushed first. *)

val length : 'a t -> int
(** Lock-free host read; exact at quiescence. *)

val pushes : 'a t -> int
(** Successful pushes ever. *)

val pops : 'a t -> int
(** Successful pops ever. *)

val retries : 'a t -> int
(** Failed CAS attempts ever (contention indicator). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Quiescent-only walk, top first, via charge-free peeks (callable from
    outside any simulated thread). Raises [Failure] if any operation is
    still in flight, or if the walk finds structural corruption — a
    cycle, a twice-linked slot or a payload-less live slot (the
    signatures of a lost ABA tag). *)
