(** Assembling an {!Alloc_intf.t} and the generic implementations of its
    extended members.

    {!make} is how every allocator builds its public record: the
    implementation provides the core closures (malloc, free, usable_size,
    stats, check) and overrides only what it can do better; everything
    else gets the generic default. The defaults mirror how the paper's
    allocator exposes the full malloc interface on top of its core
    malloc/free: [calloc] zeroes through the platform (charging the
    stores), and [realloc] grows by allocate-copy-free — staying in place
    whenever the existing block's usable size already covers the request,
    which with geometric size classes absorbs most small growth steps. *)

val make :
  pf:Platform.t ->
  name:string ->
  owner:int ->
  large_threshold:int ->
  malloc:(int -> int) ->
  free:(int -> unit) ->
  usable_size:(int -> int) ->
  stats:(unit -> Alloc_stats.snapshot) ->
  check:(unit -> unit) ->
  ?malloc_batch:(int -> int -> int array) ->
  ?free_batch:(int array -> unit) ->
  ?flush:(unit -> unit) ->
  ?thread_exit:(unit -> unit) ->
  ?realloc:(addr:int -> size:int -> int) ->
  unit ->
  Alloc_intf.t
(** Defaults for the optional members: [malloc_batch] loops [malloc],
    [free_batch] loops [free], [flush] is a no-op, [thread_exit] falls
    back to [flush] (allocators without per-thread heap assignments have
    nothing further to release), [realloc] is the generic
    allocate-copy-free, and [calloc]/[aligned_alloc] are always the
    generic forms built over [malloc]. *)

(** {2 Free-function forms}

    Thin wrappers delegating to the record members; the [Platform.t]
    argument is kept for signature stability with existing call sites. *)

val calloc : Platform.t -> Alloc_intf.t -> count:int -> size:int -> int
(** [calloc pf a ~count ~size] allocates [count * size] bytes and writes
    the whole block (the zeroing traffic of C's calloc). Raises
    [Invalid_argument] on non-positive arguments or overflow. *)

val realloc : Platform.t -> Alloc_intf.t -> addr:int -> size:int -> int
(** [realloc pf a ~addr ~size] returns a block of at least [size] bytes
    holding the old block's prefix. In-place when the current block
    already has room; otherwise allocates, copies (charged as reads and
    writes of the copied bytes) and frees the old block. *)

val aligned_alloc : Platform.t -> Alloc_intf.t -> align:int -> size:int -> int
(** [aligned_alloc pf a ~align ~size] returns a block whose address is a
    multiple of [align] (a power of two). Alignments up to 8 use the
    normal path; larger alignments are served page-aligned from the
    allocator's large-object path by over-rounding the request, trading
    memory for alignment, and are only supported up to the platform page
    size. *)
