(* Unbounded intrusive deferred free list: the rpmalloc/jdz-style
   replacement for a heap's bounded remote-free queue.

   A producer (a thread freeing a block whose superblock belongs to
   another heap) pushes the block itself onto the owner's list: the
   block's first word becomes the intrusive next-link, and publication
   is a single CAS on the list head — wait-free on the uncontended fast
   path, lock-free under contention, never falling back to locking the
   owner. The owner reclaims the entire list with one exchange
   (head := 0) during its next fill/flush/trim and walks it privately,
   so consumption costs one atomic regardless of length.

   Because producers only push and the single consumer takes the whole
   list atomically, the classic Treiber ABA hazard does not arise: a
   push whose observed head was reclaimed-and-readvanced back to the
   same address still links a consistent list (its next-link equals the
   current head by value, and value equality is all the structure
   needs). Hence no generation tag, unlike {!Lockfree}.

   Representation: the simulated machine carries only the head word and
   the per-block link stores/loads (so the protocol's coherence traffic
   and schedule interleavings are real); the link *values* live in a
   host-side table under a host mutex, the established idiom for
   oracle/sanitizer state — blocks are private until the CAS publishes
   them and private again after the exchange, so the table is only ever
   touched on the winning side of an atomic and stays schedule-exact. *)

type node = {
  dn_next : int; (* 0 terminates *)
  dn_sb : Superblock.t;
}

type t = {
  pf : Platform.t;
  head : Platform.atomic_int; (* 0 = empty, else address of the top block *)
  links : (int, node) Hashtbl.t;
  mu : Mutex.t;
  lost_node : bool; (* mutant: a failed push CAS is treated as success *)
  on_retry : unit -> unit;
  mutable n_len : int;
  mutable n_pushes : int;
  mutable n_reclaims : int;
  mutable n_reclaimed : int;
  mutable n_retries : int;
}

let create (pf : Platform.t) ~name ?(lost_node = false) ?(on_retry = fun () -> ()) () =
  {
    pf;
    head = pf.Platform.new_atomic (name ^ ".head") 0;
    links = Hashtbl.create 64;
    mu = Mutex.create ();
    lost_node;
    on_retry;
    n_len = 0;
    n_pushes = 0;
    n_reclaims = 0;
    n_reclaimed = 0;
    n_retries = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Producer side. Every [addr] must be a live block of its superblock
   (never 0: block addresses sit past a superblock header). The whole
   batch is linked into a private chain — one link store per block, on
   the block's own line — and published with a single CAS on the head,
   so an eviction batch costs one head-line transfer regardless of its
   size. Only the tail link depends on the observed head, so a retry
   re-patches one word, not the chain. *)
let push_many t items =
  match items with
  | [] -> ()
  | (_, first_addr) :: _ ->
    let rec interior = function
      | (sb, addr) :: ((_, next_addr) :: _ as rest) ->
        t.pf.Platform.write ~addr ~len:8;
        locked t (fun () -> Hashtbl.replace t.links addr { dn_next = next_addr; dn_sb = sb });
        interior rest
      | [ last ] -> last
      | [] -> assert false
    in
    let last_sb, last_addr = interior items in
    let n = List.length items in
    let rec attempt () =
      let next = t.head.Platform.load () in
      (* Store the tail link into the (still private) block body. *)
      t.pf.Platform.write ~addr:last_addr ~len:8;
      locked t (fun () -> Hashtbl.replace t.links last_addr { dn_next = next; dn_sb = last_sb });
      if t.head.Platform.cas ~expected:next ~desired:first_addr then
        locked t (fun () ->
            t.n_len <- t.n_len + n;
            t.n_pushes <- t.n_pushes + n)
      else begin
        locked t (fun () -> t.n_retries <- t.n_retries + 1);
        t.on_retry ();
        if t.lost_node then
          (* Mutant: pretend the failed CAS succeeded. The chain is now
             on no list and will never be reclaimed — a silent leak that
             only materialises under producer contention. *)
          locked t (fun () -> List.iter (fun (_, addr) -> Hashtbl.remove t.links addr) items)
        else attempt ()
      end
    in
    attempt ()

let push t sb addr = push_many t [ (sb, addr) ]

(* Walk a privately-owned chain starting at [h], removing link entries.
   Each hop is a real load of the block's link word. *)
let walk t ~charged h =
  let rec go acc addr =
    if addr = 0 then List.rev acc
    else begin
      if charged then t.pf.Platform.read ~addr ~len:8;
      match locked t (fun () -> Hashtbl.find_opt t.links addr) with
      | None -> failwith (Printf.sprintf "Deferred_list(%s): node %#x without payload" t.head.Platform.atomic_name addr)
      | Some n ->
        locked t (fun () -> Hashtbl.remove t.links addr);
        go ((n.dn_sb, addr) :: acc) n.dn_next
    end
  in
  go [] h

(* Consumer side: one exchange detaches the whole list. The load+CAS
   loop is an exchange — it only retries when a concurrent push lands
   between the load and the CAS, and then succeeds against the new head. *)
let reclaim t =
  let rec grab () =
    let h = t.head.Platform.load () in
    if h = 0 then 0
    else if t.head.Platform.cas ~expected:h ~desired:0 then h
    else begin
      locked t (fun () -> t.n_retries <- t.n_retries + 1);
      t.on_retry ();
      grab ()
    end
  in
  let h = grab () in
  if h = 0 then []
  else begin
    let items = walk t ~charged:true h in
    locked t (fun () ->
        t.n_len <- t.n_len - List.length items;
        t.n_reclaims <- t.n_reclaims + 1;
        t.n_reclaimed <- t.n_reclaimed + List.length items);
    items
  end

(* Quiescent drain for post-run teardown: no simulated-machine effects
   (callable from outside any simulated thread), same result. *)
let drain_quiescent t =
  let h = t.head.Platform.peek () in
  if h = 0 then []
  else begin
    t.head.Platform.poke 0;
    let items = walk t ~charged:false h in
    locked t (fun () ->
        t.n_len <- t.n_len - List.length items;
        t.n_reclaims <- t.n_reclaims + 1;
        t.n_reclaimed <- t.n_reclaimed + List.length items);
    items
  end

let length t = locked t (fun () -> t.n_len)

let pushes t = locked t (fun () -> t.n_pushes)

let reclaims t = locked t (fun () -> t.n_reclaims)

let reclaimed t = locked t (fun () -> t.n_reclaimed)

let retries t = locked t (fun () -> t.n_retries)

(* Quiescent structural check: walks the chain without consuming it,
   detecting cycles, payload-less nodes and a length drifting from the
   push/reclaim accounting. *)
let iter t f =
  let seen = Hashtbl.create 16 in
  let rec go n addr =
    if addr = 0 then n
    else begin
      if Hashtbl.mem seen addr then
        failwith (Printf.sprintf "Deferred_list(%s): cycle through %#x" t.head.Platform.atomic_name addr);
      Hashtbl.replace seen addr ();
      match locked t (fun () -> Hashtbl.find_opt t.links addr) with
      | None ->
        failwith (Printf.sprintf "Deferred_list(%s): node %#x without payload" t.head.Platform.atomic_name addr)
      | Some node ->
        f node.dn_sb addr;
        go (n + 1) node.dn_next
    end
  in
  let n = go 0 (t.head.Platform.peek ()) in
  if n <> length t then
    failwith
      (Printf.sprintf "Deferred_list(%s): %d nodes on the list but %d accounted" t.head.Platform.atomic_name
         n (length t))
