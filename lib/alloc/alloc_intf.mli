(** The allocator interface every implementation exposes.

    Mirrors the C allocation API: [malloc size] returns the simulated
    address of a block of at least [size] bytes; [free addr] releases a
    block previously returned by the same allocator. The extended entry
    points (batches, [flush], [realloc]/[calloc]/[aligned_alloc]) are
    record members so an implementation can override them with something
    better than the generic code — build instances with {!Alloc_api.make},
    which supplies correct defaults for everything beyond the core
    malloc/free. *)

type t = {
  name : string;
  owner : int;  (** this allocator's {!Vmem} owner tag *)
  large_threshold : int;
      (** requests strictly above this size take the page-direct
          large-object path (S/2 in the paper) *)
  malloc : int -> int;
  free : int -> unit;
  usable_size : int -> int;
      (** actual capacity of the block at the given address; raises
          [Invalid_argument] on a foreign address *)
  stats : unit -> Alloc_stats.snapshot;
  check : unit -> unit;
      (** validates internal invariants, raising [Failure] on corruption;
          cheap enough to call from tests after every operation *)
  malloc_batch : int -> int -> int array;
      (** [malloc_batch n size]: [n] blocks of at least [size] bytes.
          Default: [n] repeated mallocs; batching allocators amortise
          their lock traffic instead. *)
  free_batch : int array -> unit;
      (** frees every address; default is repeated [free]. *)
  flush : unit -> unit;
      (** returns whatever the calling thread's front end holds (cached
          blocks, queued remote frees) to the shared structure; a no-op
          for allocators without a front end. *)
  thread_exit : unit -> unit;
      (** the calling thread is about to retire: release everything it
          privately holds AND its heap assignment, so superblocks left
          behind are adopted rather than stranded (see
          {!Hoard.on_thread_exit}). Defaults to [flush] for allocators
          without per-thread state. Idempotent — a second call from the
          same thread is a no-op. *)
  realloc : addr:int -> size:int -> int;
      (** resize, in place when possible; see {!Alloc_api.make} for the
          generic allocate-copy-free default. *)
  calloc : count:int -> size:int -> int;
      (** zeroed allocation of [count * size] bytes. *)
  aligned_alloc : align:int -> size:int -> int;
      (** block whose address is a multiple of [align] (a power of two,
          at most the platform page size). *)
}

type factory = {
  label : string;
  description : string;
  instantiate : Platform.t -> t;
}
(** How the harness creates a fresh allocator per experiment run. *)

val next_owner : unit -> int
(** Process-unique {!Vmem} owner tags, so several allocators can share one
    address space with separate accounting. *)
