(* Lock-striped registry. Superblocks are S-aligned, so [addr / S] names a
   slot; slots hash across power-of-two stripes. Writers (register /
   unregister, superblock-granularity events next to a page_map) serialise
   on their stripe's platform lock and publish the stripe's slot map
   through an Atomic, so the lookup on every [free] is wait-free: no lock
   word bounces between processors on the hot path. *)

module Slot_map = Map.Make (Int)

type stripe = { lock : Platform.lock; map : Superblock.t Slot_map.t Atomic.t }

type t = { size : int; mask : int; stripes : stripe array }

let default_stripes = 64

let create ?(stripes = default_stripes) pf ~sb_size =
  if sb_size <= 0 || sb_size land (sb_size - 1) <> 0 then
    invalid_arg "Sb_registry.create: sb_size must be a positive power of two";
  if stripes <= 0 || stripes land (stripes - 1) <> 0 then
    invalid_arg "Sb_registry.create: stripes must be a positive power of two";
  {
    size = sb_size;
    mask = stripes - 1;
    stripes =
      Array.init stripes (fun i ->
          { lock = pf.Platform.new_lock (Printf.sprintf "sbreg.s%d" i); map = Atomic.make Slot_map.empty });
  }

let sb_size t = t.size

let nstripes t = Array.length t.stripes

let slot t addr = addr / t.size

let stripe_for t key = t.stripes.(key land t.mask)

let register t sb =
  let key = slot t (Superblock.base sb) in
  let st = stripe_for t key in
  st.lock.acquire ();
  let m = Atomic.get st.map in
  let dup = Slot_map.mem key m in
  if not dup then Atomic.set st.map (Slot_map.add key sb m);
  st.lock.release ();
  if dup then invalid_arg "Sb_registry.register: slot already occupied"

let unregister t sb =
  let key = slot t (Superblock.base sb) in
  let st = stripe_for t key in
  st.lock.acquire ();
  Atomic.set st.map (Slot_map.remove key (Atomic.get st.map));
  st.lock.release ()

let lookup t ~addr =
  let key = slot t addr in
  Slot_map.find_opt key (Atomic.get (stripe_for t key).map)

let count t = Array.fold_left (fun acc st -> acc + Slot_map.cardinal (Atomic.get st.map)) 0 t.stripes

let iter t f = Array.iter (fun st -> Slot_map.iter (fun _ sb -> f sb) (Atomic.get st.map)) t.stripes
