(* The lock-free global heap: a per-(size-class, fullness-group) index of
   the superblocks heap 0 holds, built so that every transfer to or from
   the global heap — and every free into a global superblock — completes
   with CAS only, never acquiring the heap-0 lock.

   Structure. Each member superblock owns one SLOT: a record carrying the
   superblock and one atomic WORD encoding (state, fullness bin). Slots
   are allocated once per superblock (the id is cached in
   [Superblock.gslot]) and live forever in an append-only table, so a
   stale reader can always dereference a slot id it popped. Membership is
   advertised through ABA-tagged Treiber stacks of ENTRY NODES, one stack
   per (class, bin) plus a class-agnostic stack of empties; nodes come
   from a lock-free free list and are recycled on pop.

   The word is the ground truth; the stacks are a lazily-maintained index:

     Absent        not a member (owned by some heap, or in transit)
     Idle b        member, quiescent, fullness bin b
     Busy b        member, one reclaimer is freeing a block into it

   Entries may be stale — a superblock that moved bins (or left the index
   and came back) leaves old entries behind. The maintained invariant is
   one-sided: at quiescence, every Idle(b) member has at least one entry
   in stack b (publish pushes one; a bin-changing free pushes one to the
   new bin; an acquirer that pops an entry it cannot claim pushes it
   back). Pops simply discard entries whose word no longer matches, so
   staleness costs retries, never correctness.

   Claiming (acquire / take_empty) is a CAS Idle(b) -> Absent on the word
   — the linearization point of a global -> heap transfer. After it the
   superblock's content is private to the claimer: a concurrent free
   finding the word Absent bounces back to the caller for re-routing
   instead of touching the superblock. Freeing a block into a member runs
   the Busy protocol: CAS Idle(b) -> Busy(b), mutate, store Idle(b'),
   republish. Every retry loop here is bounded by other threads'
   progress (a failed CAS means the word or a head moved), which is what
   keeps the schedule explorer's state space finite.

   Fullness only decreases while a superblock is a member (allocation
   happens only after a claim), so a stale entry always points at an
   emptier-or-equal superblock — misplacement makes acquire's
   fullest-first scan slightly pessimistic, never unsound.

   Mutants: [aba_tag:false] freezes every stack tag ("global-no-aba") —
   a pop over a concurrently recycled head splices a stale tail and
   strands nodes that [check]'s exhaustive walk then finds unreachable.
   [skip_revalidate:true] ("global-skip-revalidate") turns the claim CAS
   into a plain store, stomping a concurrent reclaimer's Busy. *)

type slot = {
  sb : Superblock.t;
  word : Platform.atomic_int;
}

type node = {
  mutable n_slot : int; (* payload; written while the node is privately owned *)
  n_next : Platform.atomic_int;
}

type t = {
  pf : Platform.t;
  name : string;
  ngroups : int;
  nclasses : int;
  aba_tag : bool;
  skip_revalidate : bool;
  on_retry : unit -> unit;
  (* Append-only tables, published via host atomics, grown under [mu]
     (a host mutex: zero simulated cost, construction-discipline only). *)
  slots : slot array Atomic.t;
  n_slots : int Atomic.t;
  nodes : node array Atomic.t;
  n_nodes : int Atomic.t;
  next_fresh : int Atomic.t; (* node ids below this have been handed out at least once *)
  mu : Mutex.t;
  free_head : Platform.atomic_int; (* recycled entry nodes *)
  heads : Platform.atomic_int array array; (* heads.(class).(bin), bin <= ngroups (full) *)
  empties_head : Platform.atomic_int; (* class-agnostic: any empty is reformattable *)
  (* Gauges and counters: host atomics, exact at quiescence. *)
  members : int Atomic.t;
  empties : int Atomic.t;
  u_bytes : int Atomic.t; (* usable live bytes inside member superblocks *)
  pushes : int Atomic.t;
  pops : int Atomic.t;
  revalidates : int Atomic.t;
  retries : int Atomic.t;
}

(* ---- word encoding: state * nbins + bin ---- *)

let nbins t = t.ngroups + 2 (* partial bins, full, empties *)

let full_bin t = t.ngroups

let empties_bin t = t.ngroups + 1

let word_absent = 0

let word_idle t b = nbins t + b

let word_busy t b = (2 * nbins t) + b

type state =
  | Absent
  | Idle of int
  | Busy of int

let decode t w =
  match w / nbins t with
  | 0 -> Absent
  | 1 -> Idle (w mod nbins t)
  | 2 -> Busy (w mod nbins t)
  | _ -> failwith "Global_index: corrupt state word"

(* ---- head encoding: (idx + 1) * tag_space + tag ----
   Unlike [Lockfree]'s bounded pool, the node table grows, so the tag
   occupies a fixed low field and the index the (unbounded) high bits.
   2^20 tag values before wrap-around is far beyond any explorer bound;
   the mutant freezes the tag at zero. *)

let tag_space = 1 lsl 20

let pack ~tag ~idx = ((idx + 1) * tag_space) + tag

let unpack packed = (packed mod tag_space, (packed / tag_space) - 1)

let next_tag t tag = if t.aba_tag then (tag + 1) land (tag_space - 1) else 0

let create pf ~name ~nclasses ~ngroups ?(aba_tag = true) ?(skip_revalidate = false)
    ?(on_retry = fun () -> ()) () =
  if ngroups < 1 then invalid_arg "Global_index.create: ngroups must be >= 1";
  if nclasses < 1 then invalid_arg "Global_index.create: nclasses must be >= 1";
  let new_atomic suffix init = pf.Platform.new_atomic (name ^ "." ^ suffix) init in
  {
    pf;
    name;
    ngroups;
    nclasses;
    aba_tag;
    skip_revalidate;
    on_retry;
    slots = Atomic.make [||];
    n_slots = Atomic.make 0;
    nodes = Atomic.make [||];
    n_nodes = Atomic.make 0;
    next_fresh = Atomic.make 0;
    mu = Mutex.create ();
    free_head = new_atomic "free" (pack ~tag:0 ~idx:(-1));
    heads =
      Array.init nclasses (fun c ->
          Array.init (ngroups + 1) (fun b -> new_atomic (Printf.sprintf "c%db%d" c b) (pack ~tag:0 ~idx:(-1))));
    empties_head = new_atomic "empties" (pack ~tag:0 ~idx:(-1));
    members = Atomic.make 0;
    empties = Atomic.make 0;
    u_bytes = Atomic.make 0;
    pushes = Atomic.make 0;
    pops = Atomic.make 0;
    revalidates = Atomic.make 0;
    retries = Atomic.make 0;
  }

let retry t =
  Atomic.incr t.retries;
  t.on_retry ()

let slot_at t i = (Atomic.get t.slots).(i)

let node_at t i = (Atomic.get t.nodes).(i)

(* ---- Treiber stack primitives over the node table ---- *)

let rec pop_node t head =
  let packed = head.Platform.load () in
  let tag, idx = unpack packed in
  if idx < 0 then None
  else begin
    let below = (node_at t idx).n_next.Platform.load () in
    if head.Platform.cas ~expected:packed ~desired:(pack ~tag:(next_tag t tag) ~idx:below) then Some idx
    else begin
      retry t;
      pop_node t head
    end
  end

let rec push_node t head idx =
  let packed = head.Platform.load () in
  let tag, top = unpack packed in
  (node_at t idx).n_next.Platform.store top;
  if head.Platform.cas ~expected:packed ~desired:(pack ~tag:(next_tag t tag) ~idx) then ()
  else begin
    retry t;
    push_node t head idx
  end

(* Allocate a never-used node id, doubling the table when all existing
   ids have been handed out. Host-side construction discipline (the
   [mu] mutex plus host atomics, zero simulated cost): node allocation
   is table management, not part of the simulated protocol — only the
   free list's Treiber ops are schedule-visible. The array is
   republished before the new id is returned, so a racing reader's
   [node_at] never misses. Fresh ids MUST NOT be seeded through the
   simulated free list: a thundering herd of takers each observing a
   transiently-empty free list would serialize behind ever-doubling
   seeding loops whose costed pushes starve the other takers into
   growing again — table size and simulated time then blow up together
   (observed: 26,000x cycle inflation on the 32P churn workload).
   Growing only when [next_fresh] reaches the table edge ties the table
   to the live-entry count, which the herd cannot inflate: each caller
   takes exactly one id. *)
let take_fresh t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let i = Atomic.get t.next_fresh in
      if i >= Atomic.get t.n_nodes then begin
        let old = Atomic.get t.nodes in
        let n = Array.length old in
        let k = max 8 n in
        let mk j =
          { n_slot = -1; n_next = t.pf.Platform.new_atomic (Printf.sprintf "%s.n%d" t.name (n + j)) (-1) }
        in
        Atomic.set t.nodes (Array.append old (Array.init k mk));
        Atomic.set t.n_nodes (n + k)
      end;
      Atomic.set t.next_fresh (i + 1);
      i)

(* A recycled node off the free list when one is there, a fresh id
   otherwise. A transiently-empty free list (a racing popper took the
   last node) costs at most one spare id — bounded by P per exhaustion,
   not a retry loop. *)
let take_node t =
  match pop_node t t.free_head with
  | Some i -> i
  | None -> take_fresh t

let head_for t ~sclass ~bin = if bin = empties_bin t then t.empties_head else t.heads.(sclass).(bin)

(* Push one membership entry for [slot] onto stack (sclass, bin). *)
let push_entry t ~sclass ~bin slot =
  let i = take_node t in
  (node_at t i).n_slot <- slot;
  push_node t (head_for t ~sclass ~bin) i

(* Pop one entry off a stack; recycles the node and returns the slot id. *)
let pop_entry t head =
  match pop_node t head with
  | None -> None
  | Some i ->
      let s = (node_at t i).n_slot in
      push_node t t.free_head i;
      Some s

(* ---- slot allocation ---- *)

(* Assign a slot to a superblock seen by the index for the first time.
   Runs while the superblock is private to the publisher, so the plain
   [set_gslot] is unracing; the table grows under [mu]. *)
let assign_slot t sb =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let old = Atomic.get t.slots in
      let id = Array.length old in
      let slot = { sb; word = t.pf.Platform.new_atomic (Printf.sprintf "%s.w%d" t.name id) word_absent } in
      Atomic.set t.slots (Array.append old [| slot |]);
      Atomic.set t.n_slots (id + 1);
      Superblock.set_gslot sb id;
      id)

let bin_of t sb =
  Heap_core.bin_index ~ngroups:t.ngroups ~used:(Superblock.used sb) ~cap:(Superblock.n_blocks sb)

(* ---- publish: heap -> global transfer ---- *)

(* Caller owns [sb] privately (already unlinked from its heap core, owner
   set to 0). The word store publishes membership; the entry push makes
   it findable. Order matters: an acquirer popping a stale entry for this
   slot between the two sees Idle and may claim — which is correct, the
   superblock IS a quiescent member from the store on. *)
let publish ?(record = fun _ ~arg:_ -> ()) t sb =
  let id =
    let g = Superblock.gslot sb in
    if g >= 0 then g else assign_slot t sb
  in
  let slot = slot_at t id in
  let bin = bin_of t sb in
  let used_bytes = Superblock.used sb * Superblock.block_size sb in
  Atomic.incr t.members;
  if bin = empties_bin t then Atomic.incr t.empties;
  ignore (Atomic.fetch_and_add t.u_bytes used_bytes);
  slot.word.Platform.store (word_idle t bin);
  push_entry t ~sclass:(Superblock.sclass sb) ~bin id;
  Atomic.incr t.pushes;
  record Event_ring.Global_push ~arg:(Superblock.base sb)

(* ---- claiming ---- *)

(* The claim CAS; the mutant replaces it with a blind store that can
   stomp a reclaimer's Busy. *)
let claim t slot ~expected =
  if t.skip_revalidate then begin
    slot.word.Platform.store word_absent;
    true
  end
  else slot.word.Platform.cas ~expected ~desired:word_absent

(* Bookkeeping for a successful claim: the content is private from the
   CAS on, so [used] is stable here. *)
let claimed t ~record sb ~was_empty =
  Atomic.decr t.members;
  if was_empty then Atomic.decr t.empties;
  ignore (Atomic.fetch_and_add t.u_bytes (-(Superblock.used sb * Superblock.block_size sb)));
  Atomic.incr t.pops;
  record Event_ring.Global_pop ~arg:(Superblock.base sb)

(* Put a popped-but-unclaimable entry back where its word says it lives,
   keeping the one-entry-per-member invariant. *)
let repush t ~record slot_id bin =
  let sb = (slot_at t slot_id).sb in
  push_entry t ~sclass:(Superblock.sclass sb) ~bin slot_id;
  Atomic.incr t.revalidates;
  record Event_ring.Global_revalidate ~arg:(Superblock.base sb)

(* Resolve one popped entry against its slot's word. [`Claimed sb] when
   the claim succeeded and the entry satisfied [want]; [`Drop] when the
   entry was stale (discarded, or repushed to a DIFFERENT stack) — the
   caller keeps scanning; [`Busy] when a reclaimer holds the superblock
   — the entry went back onto the SAME stack, so the caller must stop
   scanning it (popping again would just meet the same entry: a scanner
   could otherwise spin pop/repush forever while the reclaimer is
   descheduled, a livelock the explorer's finiteness rule forbids).
   [want] decides claimability from the Idle bin: acquire wants
   allocatable superblocks of its class, take_empty wants empties. *)
let rec resolve t ~record ~want slot_id =
  let slot = slot_at t slot_id in
  let w = slot.word.Platform.load () in
  match decode t w with
  | Absent -> `Drop (* claimed away since the entry was pushed *)
  | Busy b ->
      (* A reclaimer is mutating it; put the entry back for later. *)
      repush t ~record slot_id b;
      `Busy
  | Idle b ->
      if want t slot.sb b then begin
        if claim t slot ~expected:w then begin
          claimed t ~record slot.sb ~was_empty:(b = empties_bin t);
          `Claimed slot.sb
        end
        else begin
          (* The word moved (Busy, Absent or a new bin): another thread
             made progress; re-resolve this same entry. *)
          retry t;
          resolve t ~record ~want slot_id
        end
      end
      else begin
        (* Misplaced entry: its word names another class's stack or
           another bin — the repush lands there, never back here. *)
        repush t ~record slot_id b;
        `Drop
      end

(* An acquire for class [c] may claim any member of class [c] with a free
   block, or any empty (reformatted by the caller). A full member or a
   live member of another class (possible through a stale entry left in
   an old class's stack across a reformat cycle) is repushed to where it
   belongs. *)
let want_for_class sclass t sb b =
  b <> full_bin t && (b = empties_bin t || Superblock.sclass sb = sclass)

let want_empty t _sb b = b = empties_bin t

(* Drain a stack until a claim lands, it runs dry, or a Busy member
   turns up. Terminates: every [`Drop] iteration consumes an entry this
   stack can never get back without another thread's progress, and
   [`Busy] stops immediately. *)
let rec scan t ~record ~want head =
  match pop_entry t head with
  | None -> None
  | Some slot_id -> (
      match resolve t ~record ~want slot_id with
      | `Claimed sb -> Some sb
      | `Drop -> scan t ~record ~want head
      | `Busy -> None)

(* Fullest-first acquire: partial bins from fullest to emptiest, then the
   empties. Never scans the full stack — nothing there is allocatable. *)
let acquire ?(record = fun _ ~arg:_ -> ()) t ~sclass =
  let want = want_for_class sclass in
  let rec bins b =
    if b < 0 then scan t ~record ~want t.empties_head
    else
      match scan t ~record ~want t.heads.(sclass).(b) with
      | Some sb -> Some sb
      | None -> bins (b - 1)
  in
  bins (t.ngroups - 1)

let take_empty ?(record = fun _ ~arg:_ -> ()) t = scan t ~record ~want:want_empty t.empties_head

(* ---- freeing a block into a member superblock ---- *)

type free_result =
  | Freed of { now_empty : bool }
  | Requeue
  | Not_member of { owner : int }

(* The Busy protocol: CAS Idle(b) -> Busy(b) wins exclusive mutation
   rights without any lock; the closing store Idle(b') republishes. A
   bin change pushes a fresh entry to the new bin (the old bin's entry —
   still present, or being repushed by an acquirer that saw Busy — goes
   stale). A concurrent claimer cannot interleave: claims CAS against
   Idle and the word is Busy throughout. *)
let free_block t sb ~addr =
  let g = Superblock.gslot sb in
  if g < 0 then Not_member { owner = Superblock.owner sb }
  else begin
    let slot = slot_at t g in
    let rec claim_busy () =
      let w = slot.word.Platform.load () in
      match decode t w with
      | Absent -> Not_member { owner = Superblock.owner sb }
      | Busy _ -> Requeue
      | Idle b ->
          if slot.word.Platform.cas ~expected:w ~desired:(word_busy t b) then begin
            Superblock.free_block sb addr;
            let b' = bin_of t sb in
            let now_empty = b' = empties_bin t in
            ignore (Atomic.fetch_and_add t.u_bytes (-(Superblock.block_size sb)));
            if now_empty then Atomic.incr t.empties;
            slot.word.Platform.store (word_idle t b');
            if b' <> b then push_entry t ~sclass:(Superblock.sclass sb) ~bin:b' g;
            Freed { now_empty }
          end
          else begin
            retry t;
            claim_busy ()
          end
    in
    claim_busy ()
  end

(* ---- gauges and counters ---- *)

let members t = Atomic.get t.members

let empties t = Atomic.get t.empties

let u_bytes t = Atomic.get t.u_bytes

let pushes t = Atomic.get t.pushes

let pops t = Atomic.get t.pops

let revalidates t = Atomic.get t.revalidates

let retries t = Atomic.get t.retries

(* ---- quiescent mutation (peek/poke, charge-free) ----

   Teardown-time counterparts of [publish] and [free_block] for
   [Hoard.flush_caches], which runs after every worker has joined: the
   same state transitions with no simulated cost and no schedule
   visibility, so draining caches at exit does not perturb replay. *)

let q_pop_node t head =
  let packed = head.Platform.peek () in
  let tag, idx = unpack packed in
  if idx < 0 then None
  else begin
    let below = (node_at t idx).n_next.Platform.peek () in
    head.Platform.poke (pack ~tag:(next_tag t tag) ~idx:below);
    Some idx
  end

let q_push_node t head idx =
  let packed = head.Platform.peek () in
  let tag, top = unpack packed in
  (node_at t idx).n_next.Platform.poke top;
  head.Platform.poke (pack ~tag:(next_tag t tag) ~idx)

let q_take_node t =
  match q_pop_node t t.free_head with
  | Some i -> i
  | None -> take_fresh t

let q_push_entry t ~sclass ~bin slot =
  let i = q_take_node t in
  (node_at t i).n_slot <- slot;
  q_push_node t (head_for t ~sclass ~bin) i

let q_publish t sb =
  let id =
    let g = Superblock.gslot sb in
    if g >= 0 then g else assign_slot t sb
  in
  let slot = slot_at t id in
  let bin = bin_of t sb in
  Atomic.incr t.members;
  if bin = empties_bin t then Atomic.incr t.empties;
  ignore (Atomic.fetch_and_add t.u_bytes (Superblock.used sb * Superblock.block_size sb));
  slot.word.Platform.poke (word_idle t bin);
  q_push_entry t ~sclass:(Superblock.sclass sb) ~bin id;
  Atomic.incr t.pushes

let q_free t sb ~addr =
  let g = Superblock.gslot sb in
  if g < 0 then failwith (t.name ^ ": q_free on a superblock that was never a member");
  let slot = slot_at t g in
  let b =
    match decode t (slot.word.Platform.peek ()) with
    | Idle b -> b
    | Absent -> failwith (t.name ^ ": q_free on a non-member superblock")
    | Busy _ -> failwith (t.name ^ ": q_free found a Busy word at quiescence")
  in
  Superblock.free_block sb addr;
  let b' = bin_of t sb in
  ignore (Atomic.fetch_and_add t.u_bytes (-(Superblock.block_size sb)));
  if b' = empties_bin t then Atomic.incr t.empties;
  slot.word.Platform.poke (word_idle t b');
  if b' <> b then q_push_entry t ~sclass:(Superblock.sclass sb) ~bin:b' g

(* ---- quiescent introspection (peek-only, charge-free) ---- *)

(* Members at quiescence = slots whose word is not Absent. Busy here
   means a reclaimer died mid-protocol — that is a failure, not a state
   to iterate past. *)
let iter_members t f =
  let slots = Atomic.get t.slots in
  let n = Atomic.get t.n_slots in
  for i = 0 to n - 1 do
    let s = slots.(i) in
    match decode t (s.word.Platform.peek ()) with
    | Absent -> ()
    | Idle _ -> f s.sb
    | Busy _ -> failwith (Printf.sprintf "%s: superblock Busy at quiescence" t.name)
  done

let fail t fmt = Printf.ksprintf (fun m -> failwith (t.name ^ ": " ^ m)) fmt

(* Exhaustive structural check, quiescent-only.

   Walks every stack (all (class, bin) heads, the empties, the free
   list) with a global node-seen set: a node reached twice, a cycle, or
   a node reachable from no head at all ("global-no-aba"'s stale-splice
   strand) fails. Then validates every slot: no Busy words, recorded bin
   = recomputed bin, and every Idle member reachable in its own bin's
   stack (the lazy-deletion invariant). Gauges must equal recomputed
   sums. *)
let check t =
  let n_nodes = Atomic.get t.next_fresh in (* ids past [next_fresh] exist but were never handed out *)
  let n_slots = Atomic.get t.n_slots in
  let seen = Array.make (max 1 n_nodes) false in
  let walked = ref 0 in
  (* slots reachable per stack: stack key -> slot id list *)
  let reach = Hashtbl.create 64 in
  let walk key head =
    let rec go idx n =
      if idx >= 0 then begin
        if n > n_nodes then fail t "stack %s longer than the node table (cycle?)" key;
        if idx >= n_nodes then fail t "stack %s references node %d beyond the table" key idx;
        if seen.(idx) then fail t "node %d reachable twice (lost ABA tag?)" idx;
        seen.(idx) <- true;
        incr walked;
        let s = (node_at t idx).n_slot in
        if key <> "free" then begin
          if s < 0 || s >= n_slots then fail t "stack %s entry names bad slot %d" key s;
          Hashtbl.add reach key s
        end;
        go ((node_at t idx).n_next.Platform.peek ()) (n + 1)
      end
    in
    go (snd (unpack (head.Platform.peek ()))) 0
  in
  walk "free" t.free_head;
  for c = 0 to t.nclasses - 1 do
    for b = 0 to t.ngroups do
      walk (Printf.sprintf "c%db%d" c b) t.heads.(c).(b)
    done
  done;
  walk "empties" t.empties_head;
  if !walked <> n_nodes then
    fail t "%d of %d allocated nodes unreachable from any head (stale splice?)" (n_nodes - !walked) n_nodes;
  let members = ref 0 and empties = ref 0 and u = ref 0 in
  let slots = Atomic.get t.slots in
  for i = 0 to n_slots - 1 do
    let s = slots.(i) in
    if Superblock.gslot s.sb <> i then fail t "slot %d: superblock's gslot diverged" i;
    match decode t (s.word.Platform.peek ()) with
    | Absent -> ()
    | Busy b -> fail t "slot %d: Busy(%d) at quiescence" i b
    | Idle b ->
        incr members;
        let want = bin_of t s.sb in
        if b <> want then fail t "slot %d: recorded bin %d but fullness says %d" i b want;
        if b = empties_bin t then incr empties;
        u := !u + (Superblock.used s.sb * Superblock.block_size s.sb);
        let key =
          if b = empties_bin t then "empties" else Printf.sprintf "c%db%d" (Superblock.sclass s.sb) b
        in
        if not (List.mem i (Hashtbl.find_all reach key)) then
          fail t "slot %d: Idle(%d) member unreachable in stack %s" i b key;
        Superblock.check s.sb
  done;
  if Atomic.get t.members <> !members then
    fail t "members gauge %d but %d Idle slots" (Atomic.get t.members) !members;
  if Atomic.get t.empties <> !empties then
    fail t "empties gauge %d but %d empty members" (Atomic.get t.empties) !empties;
  if Atomic.get t.u_bytes <> !u then fail t "u gauge %dB but members sum to %dB" (Atomic.get t.u_bytes) !u
