(** Large-object path: requests above S/2 bypass the superblock machinery
    and are served directly from the OS, page-rounded, as in the paper.

    Not thread-safe by itself — callers guard it with their own lock. *)

type t

val create : ?ring:Event_ring.t -> Platform.t -> owner:int -> stats:Alloc_stats.t -> shard:Alloc_stats.shard -> t
(** [shard] receives the malloc/free counters; the caller's lock around
    this module is the shard's lock domain. Map/unmap accounting goes
    through [stats]'s atomic OS-map path. [ring], when given, receives a
    [Large_map]/[Large_unmap] event per OS transaction and shares the
    shard's lock domain. *)

val malloc : t -> int -> int
(** Maps fresh pages for a request of the given size; returns the block
    address. *)

val adopt : t -> addr:int -> size:int -> mapped:int -> unit
(** Insert a region taken from the large cache: the pages are already
    mapped and committed, so only the table entry and the malloc /
    cache-hit counters are touched (no OS-map accounting). *)

val free : t -> addr:int -> bool
(** Unmaps the large object at [addr]; [false] if [addr] is not a live
    large object (the caller then tries its superblock path). *)

val release : t -> addr:int -> int option
(** Remove [addr] from the table and count the free without unmapping;
    returns the mapped size for the caller to park or unmap itself. *)

val has_ring : t -> bool

val note : t -> Event_ring.kind -> arg:int -> unit
(** Record an event into the instance's ring (no-op without one); call
    under the caller's lock, like every other operation. *)

val usable_size : t -> addr:int -> int option

val live_count : t -> int

val live_bytes : t -> int
