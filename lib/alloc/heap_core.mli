(** One heap: superblocks segregated by size class and sorted into fullness
    groups.

    This is the machinery shared by Hoard's per-processor heaps, its global
    heap, the serial allocator and the ptmalloc-style arenas: allocation
    searches a size class's groups from fullest to emptiest (the policy the
    paper uses to keep superblocks densely packed), completely empty
    superblocks are pooled class-agnostically for reuse by any class, and
    the [u_i] (bytes in use) / [a_i] (bytes held) pair needed by Hoard's
    emptiness invariant is maintained incrementally.

    Heap_core performs no locking and no platform access: callers wrap
    operations in their own locks and charge their own costs. *)

type t

val create : id:int -> classes:Size_class.t -> ?ngroups:int -> sb_size:int -> unit -> t
(** [ngroups] (default 8) is the number of partial-fullness bins. *)

val id : t -> int

val sb_size : t -> int

val ngroups : t -> int

val bin_index : ngroups:int -> used:int -> cap:int -> int
(** The fullness-group bin for a superblock with [used] of [cap] blocks
    allocated: bins [0 .. ngroups-1] partition the partial fullness range
    ([used * ngroups / cap]), bin [ngroups] is "completely full" and bin
    [ngroups + 1] "completely empty". Pure — shared with the lock-free
    global index so both sides of a superblock transfer bin identically. *)

val full_bin_index : ngroups:int -> int

val empties_bin_index : ngroups:int -> int

val u : t -> int
(** Bytes in use by the program from this heap's superblocks. *)

val a : t -> int
(** Bytes held by this heap's superblocks ([count * sb_size]). *)

val usable_a : t -> int
(** Usable bytes held: sum over superblocks of [n_blocks * block_size]
    (i.e. [a] minus header and carving waste). Hoard's emptiness invariant
    is defined on this quantity so that "too empty" always implies an
    f-empty superblock exists (the averaging argument of the paper's
    analysis, made exact in the presence of per-superblock overhead). *)

val superblock_count : t -> int

val empty_superblock_count : t -> int

val insert : t -> Superblock.t -> unit
(** Adopts a superblock (possibly partially full): sets its owner, links it
    into the right group and accounts its [a]/[u] contribution. *)

val remove : t -> Superblock.t -> unit
(** Unlinks a superblock and removes its [a]/[u] contribution. Its owner
    field is left for the caller to reassign. *)

val malloc : t -> sclass:int -> block_size:int -> (int * Superblock.t) option
(** Allocates a block of the given class, preferring the fullest
    non-full superblock, then recycling an empty superblock (reinitialised
    to the class if needed). [None] when the heap has nothing suitable —
    the caller then goes to the global heap or the OS. *)

val free : t -> Superblock.t -> int -> unit
(** Frees a block belonging to one of this heap's superblocks and
    repositions the superblock in its fullness groups. *)

val malloc_batch : t -> sclass:int -> block_size:int -> n:int -> (int * Superblock.t) list
(** Up to [n] blocks of the given class in one pass (possibly spanning
    several superblocks). Shorter than [n] exactly when the heap runs out
    of allocatable superblocks for the class — the caller refills from
    the global heap or the OS and retries. This is the fill half of the
    front-end cache: [n] blocks cross the heap for one lock acquisition. *)

val free_batch : t -> (Superblock.t * int) list -> unit
(** Frees each [(superblock, addr)] pair; the flush/drain half of the
    front-end cache. Accounting is identical to repeated {!free}. *)

val take_for_class : t -> sclass:int -> Superblock.t option
(** Removes and returns the fullest non-full superblock of the given class,
    or failing that an empty superblock (left un-reinitialised). This is
    the global-heap side of Hoard's superblock transfer. *)

val pick_victim : ?protect_last:bool -> t -> max_fullness:float -> Superblock.t option
(** Removes and returns a superblock whose fullness is at most
    [max_fullness], preferring empty ones, then emptier bins (paper: the
    superblock moved to the global heap is at least [f]-empty). With
    [protect_last] (default false), a size class's last superblock in this
    heap is never chosen unless it is completely empty — transferring it
    would only force the next allocation of that class straight back to
    the global heap (see DESIGN.md on global-heap ping-pong). [None] if no
    superblock qualifies. *)

val has_victim : t -> max_fullness:float -> protect_last:bool -> bool
(** Whether {!pick_victim} would succeed, without removing anything. *)

val find_allocatable : t -> sclass:int -> bool
(** Whether {!malloc} would succeed for this class without new memory. *)

val iter : t -> (Superblock.t -> unit) -> unit

val class_profile : t -> (int * float) array
(** Per size class, [(superblock_count, fullness)] where fullness is
    used blocks over capacity across that class's superblocks (0. when
    the class holds none). Plain reads — call under the heap's lock or at
    quiescence; feeds the observability heatmap. *)

val check : t -> unit
(** Full structural validation (group membership, accounting, per-
    superblock consistency). Raises [Failure] on corruption. *)
