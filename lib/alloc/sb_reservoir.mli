(** Bounded reservoir of empty superblocks (see docs/memory-lifecycle.md).

    Empty superblocks leaving the global heap park here — decommitted but
    still mapped — instead of being unmapped, so a refill of any size
    class can reuse one (commit + {!Superblock.reformat}) without an OS
    map. Capacity [cap] (the config's R) bounds the parked population,
    which is what makes [resident <= heap-held + R * S] an invariant the
    oracle can enforce.

    The module is non-blocking: {!park} and {!take} are a push/pop on a
    lock-free Treiber stack of bounded capacity ({!Lockfree}), completing
    with CAS only — no reservoir lock exists, so the structure imposes no
    lock-ordering constraint. The *caller* still drives the lifecycle and
    its stats/event traffic, and ordering still matters: an accepted
    superblock is visible to a concurrent {!take} the moment {!park}'s
    publishing CAS lands, so the caller must unregister, decommit and
    account it strictly BEFORE offering it (and commit/reformat/register
    after {!take}); anything done after a successful {!park} races the
    taker. *)

type t

val create : ?aba_tag:bool -> ?on_retry:(unit -> unit) -> Platform.t -> cap:int -> t
(** [aba_tag:false] (tests only) plants the classic Treiber ABA bug; see
    {!Lockfree.create}. [on_retry] fires on every failed CAS. *)

val cap : t -> int

val park : t -> Superblock.t -> bool
(** Offers an empty, already-decommitted superblock. [true]: accepted
    (it may be concurrently taken from here on); [false]: the reservoir
    is at capacity (caller unmaps the still-private superblock). Raises
    [Failure] if the superblock has live blocks. *)

val take : t -> Superblock.t option
(** Removes and returns a parked superblock (most recently parked first),
    in whatever size class it last had — the caller reformats. *)

val length : t -> int
(** Currently parked superblocks. Lock-free read; exact at quiescence. *)

val parks : t -> int
(** Accepted {!park} calls ever. *)

val takes : t -> int
(** Successful {!take} calls ever. *)

val rejects : t -> int
(** {!park} offers bounced on a full reservoir (each became an unmap). *)

val cas_retries : t -> int
(** Failed CAS attempts inside park/take (contention indicator). *)

val iter : t -> (Superblock.t -> unit) -> unit
(** Iterates over parked superblocks, newest first. Quiescent-only, and
    enforces it: raises [Failure] if a park/take is in flight, or if the
    walk finds structural corruption (see {!Lockfree.iter}). *)
