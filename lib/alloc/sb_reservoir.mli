(** Bounded reservoir of empty superblocks (see docs/memory-lifecycle.md).

    Empty superblocks leaving the global heap park here — decommitted but
    still mapped — instead of being unmapped, so a refill of any size
    class can reuse one (commit + {!Superblock.reformat}) without an OS
    map. Capacity [cap] (the config's R) bounds the parked population,
    which is what makes [resident <= heap-held + R * S] an invariant the
    oracle can enforce.

    The module is pure bookkeeping behind its own lock domain
    ("hoard.reservoir", innermost); the *caller* drives the lifecycle and
    its stats/event traffic. Ordering matters: an accepted superblock is
    visible to a concurrent {!take} the moment {!park} publishes it, so
    the caller must unregister, decommit and account it strictly BEFORE
    offering it (and commit/reformat/register after {!take}); anything
    done after a successful {!park} races the taker. *)

type t

val create : Platform.t -> cap:int -> t

val cap : t -> int

val park : t -> Superblock.t -> bool
(** Offers an empty, already-decommitted superblock. [true]: accepted
    (it may be concurrently taken from here on); [false]: the reservoir
    is at capacity (caller unmaps the still-private superblock). Raises
    [Failure] if the superblock has live blocks. *)

val take : t -> Superblock.t option
(** Removes and returns a parked superblock (most recently parked first),
    in whatever size class it last had — the caller reformats. *)

val length : t -> int
(** Currently parked superblocks. Lock-free read; exact at quiescence. *)

val parks : t -> int
(** Accepted {!park} calls ever. *)

val takes : t -> int
(** Successful {!take} calls ever. *)

val rejects : t -> int
(** {!park} offers bounced on a full reservoir (each became an unmap). *)

val iter : t -> (Superblock.t -> unit) -> unit
(** Iterates over parked superblocks, newest first. Unlocked:
    quiescent-only (checks and tests). *)
