(** The machine interface allocators are written against.

    An allocator never touches the simulator directly: it receives a
    [Platform.t] record providing threads-and-memory primitives. Two
    implementations exist:

    - {!host}: direct execution — locks are [Mutex.t], memory traffic is
      not modelled, cycles are not charged. Used for unit tests of
      allocator logic and for Bechamel micro-benchmarks of the allocator
      code paths themselves.
    - the simulated platform built by [Hoard_sim.Sim.platform]: every
      primitive charges cycles, drives the cache-coherence simulator and
      participates in deterministic scheduling.

    Addresses are simulated-byte addresses (see {!Vmem}). *)

type lock = {
  acquire : unit -> unit;
  release : unit -> unit;
  lock_name : string;
}

(** A named atomic machine word, the substrate for lock-free protocols.
    Each operation is one hardware atomic: linearizable on the host (a
    real [Atomic.t]) and step-atomic on the simulator (the whole
    operation happens inside one scheduler step, with a preemption point
    before and after, its cost charged per {!Cost_model.t.atomic_op} and
    coherence traffic on the word's private cache line). [cas] is a
    single compare-and-swap — true iff the word held [expected] and was
    replaced by [desired]; [faa] is fetch-and-add, returning the value
    before the addition. [peek] is an inspection hook, not a machine
    operation (like [page_residency]): a charge-free, schedule-invisible
    read for quiescent introspection, callable from outside any simulated
    thread — never use it inside a protocol. [poke] is its write-side
    twin: a charge-free, schedule-invisible store for quiescent teardown
    (post-run cache flushes), equally forbidden inside a protocol. *)
type atomic_int = {
  load : unit -> int;
  store : int -> unit;
  cas : expected:int -> desired:int -> bool;
  faa : int -> int;
  peek : unit -> int;
  poke : int -> unit;
  atomic_name : string;
}

type t = {
  nprocs : int;  (** number of processors the program runs on *)
  page_size : int;
  self_proc : unit -> int;  (** processor executing the calling thread *)
  self_tid : unit -> int;  (** calling thread's id *)
  work : int -> unit;  (** spend n cycles of pure computation *)
  read : addr:int -> len:int -> unit;  (** memory load of [len] bytes *)
  write : addr:int -> len:int -> unit;  (** memory store of [len] bytes *)
  new_lock : string -> lock;
  new_atomic : string -> int -> atomic_int;
      (** [new_atomic name init]: a fresh atomic word, visible to the
          schedule explorer as a synchronisation point named [name]
          (like a lock's name). Same zero-simulated-cost construction
          discipline as [new_lock]; callable from inside or outside
          threads. *)
  now : unit -> int;
      (** event timestamp: the executing processor's simulated clock on
          the simulator, a global monotonic logical counter on the host.
          Cheap and side-effect-free with respect to timing (charges no
          cycles). *)
  page_map : bytes:int -> align:int -> owner:int -> int;
      (** obtain memory from the OS; returns the base address *)
  page_unmap : addr:int -> unit;  (** return a region to the OS *)
  page_decommit : addr:int -> unit;
      (** simulated [madvise(MADV_DONTNEED)] on the whole region based at
          [addr]: the address range stays mapped, its pages leave the
          resident set. Must name a live region base. *)
  page_commit : addr:int -> unit;
      (** re-populate a decommitted region before reusing its memory *)
  page_residency : addr:int -> Vmem.residency;
      (** residency of the page containing [addr]; side-effect-free and
          charge-free (an inspection hook, not a machine operation) *)
  mapped_bytes : owner:int -> int;  (** bytes currently held by [owner] *)
  peak_mapped_bytes : owner:int -> int;
}

val host : ?page_size:int -> ?nprocs:int -> ?vmem_backend:Vmem_backend.kind -> unit -> t
(** A direct-execution platform ([nprocs] defaults to 1). Thread ids come
    from the calling domain, so it is safe under real [Domain]-based
    parallelism; locks are real mutexes. *)

val host_vmem : t -> Vmem.t option
(** The address space behind a {!host} platform ([None] for other
    platforms). Exposed for tests that inspect accounting. *)

val host_release : t -> unit
(** Drops the bookkeeping {!host} retains for [t] (its {!Vmem.t} entry),
    after which {!host_vmem} returns [None]. Tests that create many host
    platforms should release them so the registry doesn't grow without
    bound. Safe to call from any domain; idempotent. *)
