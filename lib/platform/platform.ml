type lock = {
  acquire : unit -> unit;
  release : unit -> unit;
  lock_name : string;
}

type atomic_int = {
  load : unit -> int;
  store : int -> unit;
  cas : expected:int -> desired:int -> bool;
  faa : int -> int;
  peek : unit -> int;
  poke : int -> unit;
  atomic_name : string;
}

type t = {
  nprocs : int;
  page_size : int;
  self_proc : unit -> int;
  self_tid : unit -> int;
  work : int -> unit;
  read : addr:int -> len:int -> unit;
  write : addr:int -> len:int -> unit;
  new_lock : string -> lock;
  new_atomic : string -> int -> atomic_int;
  now : unit -> int;
  page_map : bytes:int -> align:int -> owner:int -> int;
  page_unmap : addr:int -> unit;
  page_decommit : addr:int -> unit;
  page_commit : addr:int -> unit;
  page_residency : addr:int -> Vmem.residency;
  mapped_bytes : owner:int -> int;
  peak_mapped_bytes : owner:int -> int;
}

(* Registry recovering the vmem behind a host platform, keyed by physical
   equality; only tests use it and platforms are few. Guarded by a mutex
   so concurrent [host ()] calls (e.g. from test domains) don't race the
   list, and released explicitly so long test runs don't accumulate
   vmems. *)
let host_vmems_mu = Mutex.create ()

let host_vmems : (t * Vmem.t) list ref = ref []

let host ?(page_size = 4096) ?(nprocs = 1) ?(vmem_backend = Vmem_backend.Exact) () =
  let vmem = Vmem.create ~page_size ~backend:vmem_backend () in
  let vmem_lock = Mutex.create () in
  let locked f =
    Mutex.lock vmem_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock vmem_lock) f
  in
  let self_tid () = (Domain.self () :> int) in
  (* The host has no simulated clock; a fetch-and-add logical clock keeps
     event timestamps strictly monotone across domains, which is all the
     observability layer needs from it. *)
  let tick = Atomic.make 1 in
  let t =
    {
      nprocs;
      page_size;
      self_proc = (fun () -> self_tid () mod nprocs);
      self_tid;
      work = (fun _ -> ());
      read = (fun ~addr:_ ~len:_ -> ());
      write = (fun ~addr:_ ~len:_ -> ());
      new_lock =
        (fun lock_name ->
          let m = Mutex.create () in
          { acquire = (fun () -> Mutex.lock m); release = (fun () -> Mutex.unlock m); lock_name });
      new_atomic =
        (fun atomic_name init ->
          let a = Atomic.make init in
          {
            load = (fun () -> Atomic.get a);
            store = (fun v -> Atomic.set a v);
            cas = (fun ~expected ~desired -> Atomic.compare_and_set a expected desired);
            faa = (fun n -> Atomic.fetch_and_add a n);
            peek = (fun () -> Atomic.get a);
            poke = (fun v -> Atomic.set a v);
            atomic_name;
          });
      now = (fun () -> Atomic.fetch_and_add tick 1);
      page_map = (fun ~bytes ~align ~owner -> locked (fun () -> Vmem.map vmem ~owner ~bytes ~align ()));
      page_unmap = (fun ~addr -> locked (fun () -> Vmem.unmap vmem ~addr));
      page_decommit = (fun ~addr -> locked (fun () -> Vmem.decommit vmem ~addr));
      page_commit = (fun ~addr -> locked (fun () -> Vmem.commit vmem ~addr));
      page_residency = (fun ~addr -> locked (fun () -> Vmem.residency vmem ~addr));
      mapped_bytes = (fun ~owner -> locked (fun () -> Vmem.mapped_bytes_of_owner vmem owner));
      peak_mapped_bytes = (fun ~owner -> locked (fun () -> Vmem.peak_bytes_of_owner vmem owner));
    }
  in
  Mutex.protect host_vmems_mu (fun () -> host_vmems := (t, vmem) :: !host_vmems);
  t

let host_vmem t =
  Mutex.protect host_vmems_mu (fun () ->
      List.find_map (fun (t', v) -> if t' == t then Some v else None) !host_vmems)

let host_release t =
  Mutex.protect host_vmems_mu (fun () -> host_vmems := List.filter (fun (t', _) -> t' != t) !host_vmems)
