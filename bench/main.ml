(* The full benchmark harness.

   Part 1 — Bechamel micro-benchmarks: real wall-clock latency of the
   allocator code paths themselves (host platform, no simulator), one
   test per allocator and size mix.

   Part 2 — every table and figure of the paper, regenerated through the
   experiment registry at Full scale (override with HOARD_BENCH_SCALE=quick
   and HOARD_BENCH_PROCS=1,2,4).

     dune exec bench/main.exe
*)

open Bechamel
open Bechamel.Toolkit

let factories () = Allocators.all ()

(* One malloc/free pair per run, against a long-lived allocator. *)
let pair_test (factory : Alloc_intf.factory) ~size =
  let a = factory.Alloc_intf.instantiate (Platform.host ()) in
  Test.make
    ~name:(Printf.sprintf "%s/%dB" factory.Alloc_intf.label size)
    (Staged.stage (fun () -> a.Alloc_intf.free (a.Alloc_intf.malloc size)))

(* A churn of a 64-slot working set with mixed sizes per run. *)
let churn_test (factory : Alloc_intf.factory) =
  let a = factory.Alloc_intf.instantiate (Platform.host ()) in
  let slots = Array.init 64 (fun i -> a.Alloc_intf.malloc (8 + (8 * (i mod 60)))) in
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "%s/churn" factory.Alloc_intf.label)
    (Staged.stage (fun () ->
         let k = !i mod 64 in
         incr i;
         a.Alloc_intf.free slots.(k);
         slots.(k) <- a.Alloc_intf.malloc (8 + (8 * (k * 7 mod 60)))))

let run_micro () =
  print_endline "=== Micro-benchmarks: allocator code-path latency (host wall-clock) ===\n";
  let tests =
    Test.make_grouped ~name:"alloc"
      (List.concat_map (fun f -> [ pair_test f ~size:64; pair_test f ~size:4096; churn_test f ]) (factories ()))
  in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-40s %14s %10s\n" "test" "ns/op" "r^2";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some v -> v
        | None -> nan
      in
      Printf.printf "%-40s %14.1f %10.3f\n" name est r2)
    rows;
  print_newline ()

let scale_of_env () =
  match Sys.getenv_opt "HOARD_BENCH_SCALE" with
  | Some ("quick" | "Quick" | "QUICK") -> Experiments.Quick
  | _ -> Experiments.Full

let procs_of_env () =
  match Sys.getenv_opt "HOARD_BENCH_PROCS" with
  | None -> None
  | Some s ->
    Some
      (List.filter_map
         (fun p -> int_of_string_opt (String.trim p))
         (String.split_on_char ',' s))

let run_experiments () =
  let scale = scale_of_env () in
  let procs = procs_of_env () in
  Printf.printf "=== Paper tables and figures (%s scale) ===\n\n"
    (match scale with
     | Experiments.Quick -> "quick"
     | Experiments.Full -> "full");
  List.iter
    (fun e ->
      Printf.printf "--- %s [%s] (%s) ---\n\n" e.Experiments.title e.Experiments.id e.Experiments.paper_ref;
      let t0 = Unix.gettimeofday () in
      let out = e.Experiments.run scale ~procs in
      List.iter
        (fun tbl ->
          Table.print tbl;
          print_newline ())
        out.Experiments.tables;
      (match out.Experiments.plot with
       | Some plot -> print_string plot
       | None -> ());
      Printf.printf "(%.1fs)\n\n" (Unix.gettimeofday () -. t0))
    (Experiments.all ())

let () =
  run_micro ();
  run_experiments ();
  print_endline "done."
